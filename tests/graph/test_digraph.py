"""Unit tests for the core DiGraph container."""

import pytest

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph, ReversedView


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph(0)
        assert g.n == 0
        assert g.m == 0

    def test_negative_node_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1)

    def test_add_edge_counts(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        assert g.m == 2

    def test_add_bidirectional_edge(self):
        g = DiGraph(2)
        g.add_bidirectional_edge(0, 1, 3.0)
        g.freeze()
        assert g.edge_weight(0, 1) == 3.0
        assert g.edge_weight(1, 0) == 3.0

    def test_self_loop_rejected(self):
        g = DiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1.0)

    def test_negative_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -0.5)

    def test_nan_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, float("nan"))

    def test_infinite_weight_rejected(self):
        g = DiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, float("inf"))

    def test_zero_weight_allowed(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 0.0)
        assert g.m == 1

    def test_out_of_range_node_rejected(self):
        g = DiGraph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 2, 1.0)
        with pytest.raises(GraphError):
            g.add_edge(-1, 0, 1.0)

    def test_from_edges(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.frozen
        assert g.m == 2

    def test_from_edges_bidirectional(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)], bidirectional=True)
        assert g.m == 2
        assert g.has_edge(1, 0)


class TestFreeze:
    def test_freeze_is_idempotent(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 1.0)
        assert g.freeze() is g
        assert g.freeze() is g

    def test_frozen_graph_rejects_mutation(self):
        g = DiGraph(2).freeze()
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 1.0)

    def test_parallel_edges_collapse_to_minimum(self):
        g = DiGraph(2)
        g.add_edge(0, 1, 5.0)
        g.add_edge(0, 1, 2.0)
        g.add_edge(0, 1, 7.0)
        g.freeze()
        assert g.m == 1
        assert g.edge_weight(0, 1) == 2.0

    def test_freeze_sorts_adjacency(self):
        g = DiGraph(4)
        g.add_edge(0, 3, 1.0)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        g.freeze()
        assert [v for v, _ in g.out_edges(0)] == [1, 2, 3]

    def test_max_edge_weight_tracked(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 4.0)
        g.add_edge(1, 2, 9.0)
        assert g.max_edge_weight == 9.0

    def test_max_edge_weight_empty(self):
        assert DiGraph(3).max_edge_weight == 0.0


class TestInspection:
    def test_out_edges_and_degree(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (0, 2, 2.0)])
        assert g.out_degree(0) == 2
        assert g.out_degree(1) == 0
        assert dict(g.out_edges(0)) == {1: 1.0, 2: 2.0}

    def test_in_edges(self):
        g = DiGraph.from_edges(3, [(0, 2, 1.0), (1, 2, 2.0)])
        assert sorted(g.in_edges(2)) == [(0, 1.0), (1, 2.0)]
        assert g.in_edges(0) == []

    def test_edge_weight_missing_raises(self):
        g = DiGraph.from_edges(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            g.edge_weight(1, 0)

    def test_has_edge(self):
        g = DiGraph.from_edges(2, [(0, 1, 1.0)])
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edges_iterates_all(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]
        g = DiGraph.from_edges(3, edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_nodes_range(self):
        assert list(DiGraph(3).nodes()) == [0, 1, 2]

    def test_path_weight(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.5)])
        assert g.path_weight((0, 1, 2)) == 4.0
        assert g.path_weight((0,)) == 0.0

    def test_path_weight_invalid_hop_raises(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            g.path_weight((0, 2))

    def test_is_simple_path(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        assert g.is_simple_path((0, 1, 2))
        assert not g.is_simple_path((0, 1, 2, 0))  # revisits 0
        assert not g.is_simple_path((0, 2))  # no such edge
        assert not g.is_simple_path(())


class TestReverse:
    def test_reverse_adjacency(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (2, 1, 2.0)])
        radj = g.reverse_adjacency()
        assert sorted(radj[1]) == [(0, 1.0), (2, 2.0)]
        assert radj[0] == []

    def test_reversed_copy(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        rg = g.reversed_copy()
        assert rg.has_edge(1, 0)
        assert rg.has_edge(2, 1)
        assert rg.m == 2
        assert not rg.has_edge(0, 1)

    def test_reversed_view_adjacency(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.5)])
        view = ReversedView(g)
        assert view.n == 3
        assert view.m == 2
        assert view.adjacency[1] == [(0, 1.5)]
        assert view.edge_weight(2, 1) == 2.5
        assert view.reverse_adjacency() is g.adjacency
        assert view.max_edge_weight == g.max_edge_weight
        assert view.out_edges(2) == [(1, 2.5)]

    def test_reversed_view_requires_frozen(self):
        with pytest.raises(GraphError):
            ReversedView(DiGraph(2))


class TestSharedRows:
    def test_from_shared_rows_shares_references(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        rows = list(g.adjacency) + [[]]
        g2 = DiGraph.from_shared_rows(rows, g.m, g.max_edge_weight)
        assert g2.n == 4
        assert g2.adjacency[0] is g.adjacency[0]
        assert g2.frozen
        assert g2.edge_weight(1, 2) == 2.0
