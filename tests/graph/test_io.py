"""Unit tests for graph/POI file formats."""

import io

import pytest

from repro.exceptions import DatasetError
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    load_dimacs_coordinates,
    load_dimacs_gr,
    load_edge_list,
    load_npz,
    load_poi_file,
    save_npz,
    write_dimacs_gr,
    write_edge_list,
)

DIMACS_GR = """c example graph
p sp 3 3
a 1 2 5
a 2 3 7
a 3 1 2
"""

DIMACS_CO = """c coordinates
p aux sp co 3
v 1 100 200
v 2 300 400
v 3 500 600
"""


class TestDimacs:
    def test_load_gr(self):
        g = load_dimacs_gr(io.StringIO(DIMACS_GR))
        assert g.n == 3
        assert g.m == 3
        assert g.edge_weight(0, 1) == 5.0
        assert g.edge_weight(2, 0) == 2.0

    def test_gr_round_trip(self):
        g = load_dimacs_gr(io.StringIO(DIMACS_GR))
        buf = io.StringIO()
        write_dimacs_gr(g, buf)
        g2 = load_dimacs_gr(io.StringIO(buf.getvalue()))
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_gr_file_path(self, tmp_path):
        path = tmp_path / "g.gr"
        path.write_text(DIMACS_GR)
        g = load_dimacs_gr(path)
        assert g.n == 3

    def test_gr_arc_before_problem_line(self):
        with pytest.raises(DatasetError):
            load_dimacs_gr(io.StringIO("a 1 2 3\n"))

    def test_gr_unknown_record(self):
        with pytest.raises(DatasetError):
            load_dimacs_gr(io.StringIO("p sp 2 1\nz 1 2\n"))

    def test_gr_empty(self):
        with pytest.raises(DatasetError):
            load_dimacs_gr(io.StringIO("c nothing\n"))

    def test_load_coordinates(self):
        coords = load_dimacs_coordinates(io.StringIO(DIMACS_CO))
        assert coords.shape == (3, 2)
        assert coords[1, 0] == 300.0
        assert coords[2, 1] == 600.0


class TestEdgeList:
    def test_load_basic(self):
        g = load_edge_list(io.StringIO("0 1 2.5\n1 2 3.5\n"))
        assert g.n == 3
        assert g.edge_weight(1, 2) == 3.5

    def test_default_weight_one(self):
        g = load_edge_list(io.StringIO("0 1\n"))
        assert g.edge_weight(0, 1) == 1.0

    def test_comments_and_blank_lines_skipped(self):
        g = load_edge_list(io.StringIO("# header\n\n0 1 1\n"))
        assert g.m == 1

    def test_bidirectional_flag(self):
        g = load_edge_list(io.StringIO("0 1 4\n"), bidirectional=True)
        assert g.m == 2

    def test_bad_line_raises(self):
        with pytest.raises(DatasetError):
            load_edge_list(io.StringIO("justonefield\n"))

    def test_empty_raises(self):
        with pytest.raises(DatasetError):
            load_edge_list(io.StringIO(""))

    def test_round_trip(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.5), (2, 1, 2.0)])
        buf = io.StringIO()
        write_edge_list(g, buf)
        g2 = load_edge_list(io.StringIO(buf.getvalue()))
        assert sorted(g.edges()) == sorted(g2.edges())


class TestPoiFile:
    def test_load(self):
        index = load_poi_file(io.StringIO("0 Hotel\n3 Hotel\n2 Gas Station\n"))
        assert index.nodes_of("Hotel") == (0, 3)
        assert index.nodes_of("Gas Station") == (2,)

    def test_bad_line_raises(self):
        with pytest.raises(DatasetError):
            load_poi_file(io.StringIO("42\n"))


class TestNpz:
    def test_round_trip_graph_only(self, tmp_path):
        g = DiGraph.from_edges(3, [(0, 1, 1.5), (1, 2, 2.5)])
        path = tmp_path / "snap.npz"
        save_npz(path, g)
        g2, cats, coords = load_npz(path)
        assert sorted(g2.edges()) == sorted(g.edges())
        assert cats is None
        assert coords is None

    def test_round_trip_with_categories_and_coords(self, tmp_path):
        import numpy as np

        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        cats = CategoryIndex({"A": [0, 2], "B": [1]})
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        path = tmp_path / "snap.npz"
        save_npz(path, g, categories=cats, coordinates=coords)
        g2, cats2, coords2 = load_npz(path)
        assert cats2 is not None
        assert cats2.nodes_of("A") == (0, 2)
        assert cats2.nodes_of("B") == (1,)
        assert coords2 is not None
        assert coords2.tolist() == coords.tolist()
