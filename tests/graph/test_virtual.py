"""Unit tests for the G_Q virtual-node query transform."""

import pytest

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph


@pytest.fixture
def graph():
    return DiGraph.from_edges(
        4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 10.0)]
    )


class TestKPJTransform:
    def test_virtual_target_added(self, graph):
        qg = build_query_graph(graph, (0,), (2, 3))
        assert qg.target == 4
        assert qg.graph.n == 5
        assert qg.graph.m == graph.m + 2
        assert qg.graph.edge_weight(2, 4) == 0.0
        assert qg.graph.edge_weight(3, 4) == 0.0

    def test_single_source_is_not_virtual(self, graph):
        qg = build_query_graph(graph, (0,), (3,))
        assert qg.source == 0
        assert not qg.has_virtual_source

    def test_rows_shared_with_base(self, graph):
        qg = build_query_graph(graph, (0,), (3,))
        # Non-destination rows are the very same list objects.
        assert qg.graph.adjacency[0] is graph.adjacency[0]
        assert qg.graph.adjacency[1] is graph.adjacency[1]
        # The destination row is a patched copy, base row untouched.
        assert qg.graph.adjacency[3] == graph.adjacency[3] + [(4, 0.0)]
        assert (4, 0.0) not in graph.adjacency[3]

    def test_reverse_rows_correct(self, graph):
        qg = build_query_graph(graph, (0,), (2, 3))
        radj = qg.graph.reverse_adjacency()
        assert radj[4] == [(2, 0.0), (3, 0.0)]
        assert sorted(radj[3]) == [(0, 10.0), (2, 3.0)]

    def test_destinations_sorted_deduped(self, graph):
        qg = build_query_graph(graph, (0,), (3, 2, 3))
        assert qg.destinations == (2, 3)

    def test_strip_removes_virtual_target(self, graph):
        qg = build_query_graph(graph, (0,), (3,))
        assert qg.strip((0, 1, 2, 3, 4)) == (0, 1, 2, 3)
        assert qg.strip((0, 3)) == (0, 3)


class TestGKPJTransform:
    def test_virtual_source_added(self, graph):
        qg = build_query_graph(graph, (0, 1), (3,))
        assert qg.has_virtual_source
        assert qg.source == 5
        assert qg.graph.n == 6
        assert qg.graph.edge_weight(5, 0) == 0.0
        assert qg.graph.edge_weight(5, 1) == 0.0

    def test_strip_removes_both_virtual_ends(self, graph):
        qg = build_query_graph(graph, (0, 1), (3,))
        assert qg.strip((5, 1, 2, 3, 4)) == (1, 2, 3)

    def test_gkpj_reverse_rows(self, graph):
        qg = build_query_graph(graph, (0, 1), (3,))
        radj = qg.graph.reverse_adjacency()
        assert (5, 0.0) in radj[0]
        assert (5, 0.0) in radj[1]
        assert radj[5] == []


class TestValidation:
    def test_empty_sources_rejected(self, graph):
        with pytest.raises(QueryError):
            build_query_graph(graph, (), (3,))

    def test_empty_destinations_rejected(self, graph):
        with pytest.raises(QueryError):
            build_query_graph(graph, (0,), ())

    def test_out_of_range_rejected(self, graph):
        with pytest.raises(QueryError):
            build_query_graph(graph, (0,), (99,))
        with pytest.raises(QueryError):
            build_query_graph(graph, (-1,), (3,))

    def test_unfrozen_graph_rejected(self):
        g = DiGraph(3)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(QueryError):
            build_query_graph(g, (0,), (1,))

    def test_reversed_graph_view(self, graph):
        qg = build_query_graph(graph, (0,), (3,))
        rv = qg.reversed_graph()
        assert rv.adjacency[4] == [(3, 0.0)]
        assert rv.edge_weight(4, 3) == 0.0
