"""Unit tests for the 2-hop / hub-label index."""

import random

import pytest

from repro.core.best_first import best_first
from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.landmarks.hub_labels import HubLabelIndex, exact_target_heuristic
from repro.landmarks.index import ZERO_BOUNDS
from repro.pathing.dijkstra import single_source_distances
from tests.conftest import random_graph

INF = float("inf")


class TestExactness:
    def test_all_pairs_exact_random_digraphs(self):
        rng = random.Random(191)
        for _ in range(15):
            g = random_graph(rng, min_nodes=5, max_nodes=12)
            index = HubLabelIndex.build(g)
            for u in range(g.n):
                dist = single_source_distances(g, u)
                for v in range(g.n):
                    assert index.query(u, v) == pytest.approx(dist[v]) or (
                        dist[v] == INF and index.query(u, v) == INF
                    )

    def test_all_pairs_exact_road_like(self):
        from repro.datasets.synthetic import grid_road_network

        g, _ = grid_road_network(6, 6, seed=3)
        index = HubLabelIndex.build(g)
        for u in range(0, g.n, 3):
            dist = single_source_distances(g, u)
            for v in range(g.n):
                assert index.query(u, v) == pytest.approx(dist[v])

    def test_unreachable_is_inf(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        index = HubLabelIndex.build(g)
        assert index.query(0, 2) == INF
        assert index.query(1, 0) == INF

    def test_self_distance_zero(self, diamond_graph):
        index = HubLabelIndex.build(diamond_graph)
        for v in range(diamond_graph.n):
            assert index.query(v, v) == 0.0

    def test_directionality(self):
        g = DiGraph.from_edges(2, [(0, 1, 3.0)])
        index = HubLabelIndex.build(g)
        assert index.query(0, 1) == 3.0
        assert index.query(1, 0) == INF


class TestDistanceToSet:
    def test_min_over_targets(self, line_graph):
        index = HubLabelIndex.build(line_graph)
        assert index.distance_to_set(0, (2, 4)) == 2.0
        assert index.distance_to_set(3, (0, 4)) == 1.0

    def test_matches_multi_source_reverse(self):
        rng = random.Random(192)
        from repro.pathing.dijkstra import multi_source_distances

        g = random_graph(rng, min_nodes=8, max_nodes=12, bidirectional=True)
        index = HubLabelIndex.build(g)
        targets = rng.sample(range(g.n), 3)
        true = multi_source_distances(g.reversed_copy(), targets)
        for u in range(g.n):
            assert index.distance_to_set(u, targets) == pytest.approx(true[u])


class TestLabelStatistics:
    def test_sizes_reported(self, diamond_graph):
        index = HubLabelIndex.build(diamond_graph)
        mean, largest = index.label_sizes()
        assert 1 <= mean <= 2 * diamond_graph.n
        assert largest >= mean

    def test_pruning_beats_naive_on_road_graph(self):
        """Labels must stay far below n entries per node."""
        from repro.datasets.synthetic import grid_road_network

        g, _ = grid_road_network(10, 10, seed=1)
        index = HubLabelIndex.build(g)
        mean, _ = index.label_sizes()
        assert mean < g.n / 2


class TestExactHeuristicInSearch:
    def test_ksp_with_exact_heuristic_matches_zero_heuristic(self):
        rng = random.Random(193)
        for _ in range(10):
            g = random_graph(rng, bidirectional=True)
            index = HubLabelIndex.build(g)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            if src == dst:
                continue
            qg = build_query_graph(g, (src,), (dst,))
            h = exact_target_heuristic(index, dst)
            exact = best_first(qg, 5, h)
            plain = best_first(qg, 5, ZERO_BOUNDS)
            assert [p.length for p in exact] == pytest.approx(
                [p.length for p in plain]
            )

    def test_exact_heuristic_explores_less(self):
        from repro.datasets.synthetic import grid_road_network

        g, _ = grid_road_network(8, 8, seed=5)
        index = HubLabelIndex.build(g)
        src, dst = 0, g.n - 1
        qg = build_query_graph(g, (src,), (dst,))
        blind, guided = SearchStats(), SearchStats()
        best_first(qg, 5, ZERO_BOUNDS, stats=blind)
        best_first(qg, 5, exact_target_heuristic(index, dst), stats=guided)
        assert guided.nodes_settled < blind.nodes_settled

    def test_virtual_nodes_resolve_to_zero(self, diamond_graph):
        index = HubLabelIndex.build(diamond_graph)
        h = exact_target_heuristic(index, 3)
        assert h(diamond_graph.n) == 0.0
        assert h(0) == 2.0
