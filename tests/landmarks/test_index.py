"""Unit tests for the landmark (ALT) bound index.

The load-bearing property is *admissibility*: no bound may ever exceed
the true distance (Section 4.2's triangle-inequality derivation).
"""

import random

import pytest

from repro.exceptions import LandmarkError
from repro.graph.digraph import DiGraph
from repro.landmarks.index import ZERO_BOUNDS, LandmarkIndex, ZeroBounds
from repro.pathing.dijkstra import multi_source_distances, single_source_distances
from tests.conftest import random_graph

INF = float("inf")


@pytest.fixture(scope="module")
def setting():
    rng = random.Random(41)
    g = random_graph(rng, min_nodes=15, max_nodes=25, bidirectional=True)
    index = LandmarkIndex.build(g, num_landmarks=4, seed=1)
    return g, index, rng


class TestPairwiseBound:
    def test_admissible_everywhere(self, setting):
        g, index, _ = setting
        for u in range(g.n):
            dist = single_source_distances(g, u)
            for v in range(g.n):
                lb = index.distance_bound(u, v)
                if dist[v] != INF:
                    assert lb <= dist[v] + 1e-9

    def test_nonnegative(self, setting):
        g, index, _ = setting
        for u in range(0, g.n, 3):
            for v in range(0, g.n, 3):
                assert index.distance_bound(u, v) >= 0.0

    def test_landmark_to_node_is_exact(self, setting):
        g, index, _ = setting
        w = index.landmarks[0]
        dist = single_source_distances(g, w)
        for v in range(g.n):
            if dist[v] != INF:
                # lb(w, v) >= delta(w, v) - delta(w, w) = exact distance.
                assert index.distance_bound(w, v) == pytest.approx(dist[v])


class TestTargetBounds:
    def test_eq2_admissible(self, setting):
        g, index, rng = setting
        targets = tuple(rng.sample(range(g.n), 4))
        bounds = index.to_target_bounds(targets)
        true = multi_source_distances(g.reversed_copy(), targets)
        for u in range(g.n):
            if true[u] != INF:
                assert bounds(u) <= true[u] + 1e-9

    def test_eq1_admissible_and_at_least_eq2(self, setting):
        g, index, rng = setting
        targets = tuple(rng.sample(range(g.n), 4))
        eq2 = index.to_target_bounds(targets)
        true = multi_source_distances(g.reversed_copy(), targets)
        for u in range(g.n):
            eq1 = index.to_target_bound_eq1(u, targets)
            if true[u] != INF:
                assert eq1 <= true[u] + 1e-9
            assert eq1 >= eq2(u) - 1e-9  # Eq.(1) is the tighter bound

    def test_virtual_nodes_get_zero(self, setting):
        g, index, _ = setting
        bounds = index.to_target_bounds((0,))
        assert bounds(g.n) == 0.0
        assert bounds(g.n + 1) == 0.0

    def test_target_node_bound_is_zero(self, setting):
        g, index, _ = setting
        targets = (3,)
        bounds = index.to_target_bounds(targets)
        assert bounds(3) == pytest.approx(0.0)

    def test_empty_targets_rejected(self, setting):
        _, index, _ = setting
        with pytest.raises(LandmarkError):
            index.to_target_bounds(())
        with pytest.raises(LandmarkError):
            index.to_target_bound_eq1(0, ())


class TestSourceBounds:
    def test_admissible(self, setting):
        g, index, rng = setting
        sources = tuple(rng.sample(range(g.n), 3))
        bounds = index.from_source_bounds(sources)
        true = multi_source_distances(g, sources)
        for u in range(g.n):
            if true[u] != INF:
                assert bounds(u) <= true[u] + 1e-9

    def test_single_source(self, setting):
        g, index, _ = setting
        bounds = index.from_source_bounds((0,))
        true = single_source_distances(g, 0)
        for u in range(g.n):
            if true[u] != INF:
                assert bounds(u) <= true[u] + 1e-9

    def test_empty_sources_rejected(self, setting):
        _, index, _ = setting
        with pytest.raises(LandmarkError):
            index.from_source_bounds(())


class TestDisconnected:
    def test_bounds_stay_admissible_with_unreachable_parts(self):
        # Two components: {0,1} and {2,3}.
        g = DiGraph.from_edges(
            4, [(0, 1, 2.0), (2, 3, 5.0)], bidirectional=True
        )
        index = LandmarkIndex.build(g, num_landmarks=2, seed=0)
        bounds = index.to_target_bounds((1,))
        true = multi_source_distances(g.reversed_copy(), (1,))
        for u in range(4):
            if true[u] != INF:
                assert bounds(u) <= true[u] + 1e-9
            assert bounds(u) >= 0.0 or bounds(u) == INF


class TestZeroBounds:
    def test_always_zero(self):
        zb = ZeroBounds()
        assert zb(0) == 0.0
        assert zb(10**9) == 0.0
        assert ZERO_BOUNDS(5) == 0.0


class TestBuild:
    def test_size_property(self, setting):
        _, index, _ = setting
        assert index.size == 4
        assert len(index.landmarks) == 4

    def test_build_strategies(self):
        g = DiGraph.from_edges(
            6, [(i, i + 1, 1.0) for i in range(5)], bidirectional=True
        )
        for strategy in ("farthest", "random", "degree"):
            index = LandmarkIndex.build(g, 2, strategy=strategy)
            assert index.size == 2
