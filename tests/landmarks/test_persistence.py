"""Unit tests for landmark-index persistence."""

import random

import pytest

from repro.exceptions import LandmarkError
from repro.graph.digraph import DiGraph
from repro.landmarks.index import LandmarkIndex
from tests.conftest import random_graph


class TestSaveLoad:
    def make(self, seed=171):
        rng = random.Random(seed)
        g = random_graph(rng, min_nodes=10, max_nodes=15, bidirectional=True)
        return g, LandmarkIndex.build(g, 3, seed=1)

    def test_round_trip_preserves_bounds(self, tmp_path):
        g, index = self.make()
        path = tmp_path / "landmarks.npz"
        index.save(path)
        loaded = LandmarkIndex.load(path, g)
        assert loaded.landmarks == index.landmarks
        targets = (0, 1)
        a = index.to_target_bounds(targets)
        b = loaded.to_target_bounds(targets)
        for u in range(g.n):
            assert a(u) == b(u)

    def test_round_trip_pairwise(self, tmp_path):
        g, index = self.make(seed=172)
        path = tmp_path / "lm.npz"
        index.save(path)
        loaded = LandmarkIndex.load(path, g)
        for u in range(0, g.n, 2):
            for v in range(0, g.n, 2):
                assert loaded.distance_bound(u, v) == index.distance_bound(u, v)

    def test_load_rejects_wrong_graph(self, tmp_path):
        g, index = self.make(seed=173)
        path = tmp_path / "lm.npz"
        index.save(path)
        other = DiGraph.from_edges(3, [(0, 1, 1.0)])
        with pytest.raises(LandmarkError, match="snapshot"):
            LandmarkIndex.load(path, other)

    def test_loaded_index_usable_in_solver(self, tmp_path):
        from repro.core.kpj import KPJSolver
        from repro.graph.categories import CategoryIndex

        g, index = self.make(seed=174)
        path = tmp_path / "lm.npz"
        index.save(path)
        loaded = LandmarkIndex.load(path, g)
        solver = KPJSolver(g, CategoryIndex({"T": [g.n - 1]}), landmarks=loaded)
        fresh = KPJSolver(g, CategoryIndex({"T": [g.n - 1]}), landmarks=index)
        a = solver.top_k(0, category="T", k=3)
        b = fresh.top_k(0, category="T", k=3)
        assert a.lengths == b.lengths
