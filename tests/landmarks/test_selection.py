"""Unit tests for landmark selection strategies."""

import pytest

from repro.exceptions import LandmarkError
from repro.graph.digraph import DiGraph
from repro.landmarks.selection import (
    degree_landmarks,
    farthest_landmarks,
    random_landmarks,
    select_landmarks,
)


@pytest.fixture
def grid():
    # 4x4 bidirectional grid, unit weights.
    g = DiGraph(16)
    for r in range(4):
        for c in range(4):
            u = 4 * r + c
            if c + 1 < 4:
                g.add_bidirectional_edge(u, u + 1, 1.0)
            if r + 1 < 4:
                g.add_bidirectional_edge(u, u + 4, 1.0)
    return g.freeze()


class TestSelection:
    def test_count_respected(self, grid):
        for strategy in ("farthest", "random", "degree"):
            landmarks = select_landmarks(grid, 5, strategy)
            assert len(landmarks) == 5
            assert len(set(landmarks)) == 5

    def test_zero_count_rejected(self, grid):
        with pytest.raises(LandmarkError):
            select_landmarks(grid, 0)

    def test_too_many_rejected(self, grid):
        with pytest.raises(LandmarkError):
            select_landmarks(grid, 17)

    def test_unknown_strategy_rejected(self, grid):
        with pytest.raises(LandmarkError):
            select_landmarks(grid, 2, "psychic")

    def test_deterministic_in_seed(self, grid):
        assert farthest_landmarks(grid, 4, seed=7) == farthest_landmarks(
            grid, 4, seed=7
        )
        assert random_landmarks(grid, 4, seed=7) == random_landmarks(grid, 4, seed=7)

    def test_farthest_spreads_out(self, grid):
        # On a grid the first two farthest landmarks are opposite corners
        # (distance 6 apart).
        a, b = farthest_landmarks(grid, 2, seed=1)
        from repro.pathing.dijkstra import single_source_distances

        assert single_source_distances(grid, a)[b] == 6.0

    def test_degree_prefers_high_degree(self):
        g = DiGraph(5)
        for v in (1, 2, 3, 4):
            g.add_edge(0, v, 1.0)  # node 0 has degree 4
        g.add_edge(1, 2, 1.0)
        g.freeze()
        assert degree_landmarks(g, 1) == (0,)
        assert degree_landmarks(g, 2) == (0, 1)

    def test_random_within_range(self, grid):
        assert all(0 <= v < 16 for v in random_landmarks(grid, 8, seed=3))
