"""Structured query log: ids, events, slow dumps, solver integration."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.obs.log import (
    LOG_VERSION,
    QueryLogger,
    current_query_id,
    load_slow_query,
    new_query_id,
    parse_query_log,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanTracer, render_tree


@pytest.fixture(scope="module")
def sj():
    return road_network("SJ")


def make_solver(sj, **kwargs):
    kwargs.setdefault("landmarks", 8)
    return KPJSolver(sj.graph, sj.categories, **kwargs)


class TestQueryIds:
    def test_shape_and_monotonicity(self):
        a, b = new_query_id(), new_query_id()
        pid = f"{os.getpid():x}"
        assert a.startswith(f"q-{pid}-")
        assert a != b
        assert a < b  # zero-padded sequence sorts by issue order

    def test_contextvar_defaults_to_none(self):
        assert current_query_id.get() is None


class TestQueryLogger:
    def test_requires_exactly_one_sink(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            QueryLogger()
        with pytest.raises(ValueError, match="exactly one"):
            QueryLogger(io.StringIO(), path=tmp_path / "x.jsonl")

    def test_rejects_negative_slow_ms(self):
        with pytest.raises(ValueError, match="slow_ms"):
            QueryLogger(io.StringIO(), slow_ms=-1.0)

    def test_emit_writes_single_sorted_json_line(self):
        buf = io.StringIO()
        QueryLogger(buf).emit({"b": 1, "a": 2, "event": "x"})
        line = buf.getvalue()
        assert line.endswith("\n") and line.count("\n") == 1
        assert json.loads(line) == {"a": 2, "b": 1, "event": "x"}
        assert line.index('"a"') < line.index('"b"')  # sort_keys

    def test_path_sink_appends(self, tmp_path):
        path = tmp_path / "q.jsonl"
        with QueryLogger(path=path) as log:
            log.emit({"event": "query", "v": LOG_VERSION, "ts": 0, "query_id": "q-1-1"})
        with QueryLogger(path=path) as log:
            log.emit({"event": "query", "v": LOG_VERSION, "ts": 1, "query_id": "q-1-2"})
        events = parse_query_log(path.read_text())
        assert [e["query_id"] for e in events] == ["q-1-1", "q-1-2"]

    def test_log_query_event_contents(self, sj):
        solver = make_solver(sj)
        result = solver.top_k(3, category="T2", k=4)
        buf = io.StringIO()
        log = QueryLogger(buf)
        event = log.log_query(
            result,
            query_id="q-abc-000007",
            kernel="dict",
            sources=(3,),
            category="T2",
            destinations=9,
            k=4,
        )
        (parsed,) = parse_query_log(buf.getvalue())
        assert parsed == json.loads(json.dumps(event))
        assert parsed["query_id"] == "q-abc-000007"
        assert parsed["algorithm"] == result.algorithm
        assert parsed["paths"] == result.k_found
        assert parsed["best_length"] == pytest.approx(result.paths[0].length)
        assert parsed["stats"] == result.stats.nonzero()
        assert "slow" not in parsed  # no threshold configured


class TestParseQueryLog:
    def test_skips_blank_lines(self):
        text = '\n{"event": "query", "v": %d, "ts": 0, "query_id": "q-1-1"}\n\n' % (
            LOG_VERSION
        )
        assert len(parse_query_log(text)) == 1

    @pytest.mark.parametrize(
        "line, match",
        [
            ("not json", "invalid JSON"),
            ("[1, 2]", "expected an object"),
            ('{"v": 1, "ts": 0, "query_id": "q"}', "missing 'event'"),
            (
                '{"event": "query", "v": 99, "ts": 0, "query_id": "q"}',
                "unsupported version",
            ),
            ('{"event": "query", "v": 1, "ts": 0, "query_id": ""}', "bad query_id"),
        ],
    )
    def test_rejects_malformed_lines_by_number(self, line, match):
        good = '{"event": "query", "v": %d, "ts": 0, "query_id": "q-1-1"}' % (
            LOG_VERSION
        )
        with pytest.raises(ValueError, match=match) as err:
            parse_query_log(good + "\n" + line + "\n")
        assert "line 2" in str(err.value)


class TestSlowDumps:
    def test_threshold_zero_dumps_every_query(self, sj, tmp_path):
        log = QueryLogger(
            path=tmp_path / "q.jsonl", slow_ms=0.0, slow_dir=tmp_path / "slow"
        )
        solver = make_solver(
            sj,
            query_log=log,
            metrics=MetricsRegistry(),
            tracer=SpanTracer(),
        )
        result = solver.top_k(3, category="T2", k=3)
        log.close()
        assert log.slow_count == 1
        (event,) = parse_query_log((tmp_path / "q.jsonl").read_text())
        assert event["slow"] is True
        assert event["query_id"] == result.query_id
        dump = load_slow_query(event["slow_dump"])
        # The embedded event predates the dump path being stamped on
        # the log line (a dump cannot name its own file).
        assert dump.event == {
            k: v for k, v in event.items() if k != "slow_dump"
        }
        # The metrics snapshot revives into a working registry...
        assert dump.metrics.phase_seconds() > 0
        assert dump.metrics.render_prom().startswith("# TYPE")
        # ...and the trace snapshot renders, tagged with the same id.
        assert result.query_id in render_tree(dump.trace)

    def test_fast_query_is_not_dumped(self, sj, tmp_path):
        log = QueryLogger(path=tmp_path / "q.jsonl", slow_ms=1e9)
        solver = make_solver(sj, query_log=log)
        solver.top_k(3, category="T2", k=3)
        log.close()
        (event,) = parse_query_log((tmp_path / "q.jsonl").read_text())
        assert "slow" not in event
        assert log.slow_count == 0

    def test_dump_without_trace_or_metrics_round_trips(self, sj, tmp_path):
        log = QueryLogger(path=tmp_path / "q.jsonl", slow_ms=0.0)
        solver = make_solver(sj, query_log=log)
        solver.top_k(3, category="T2", k=3)
        log.close()
        (event,) = parse_query_log((tmp_path / "q.jsonl").read_text())
        dump = load_slow_query(event["slow_dump"])
        assert dump.metrics is None
        assert dump.trace is None

    def test_load_rejects_non_dump_files(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a kpj-slow-query"):
            load_slow_query(bogus)


class TestSolverIntegration:
    def test_result_carries_query_id(self, sj):
        solver = make_solver(sj)
        a = solver.top_k(3, category="T2", k=3)
        b = solver.top_k(3, category="T2", k=3)
        assert a.query_id and b.query_id
        assert a.query_id != b.query_id
        assert a.to_dict()["query_id"] == a.query_id

    def test_contextvar_reset_after_query(self, sj):
        solver = make_solver(sj)
        solver.top_k(3, category="T2", k=3)
        assert current_query_id.get() is None

    def test_spans_tagged_with_query_id(self, sj):
        solver = make_solver(sj, tracer=SpanTracer())
        result = solver.top_k(3, category="T2", k=3)
        tagged = {
            s["name"]
            for s in result.trace["spans"]
            if s["attrs"].get("query_id") == result.query_id
        }
        assert "query" in tagged
        assert "iter_bound" in tagged  # threaded through the contextvar

    def test_one_event_per_query_in_order(self, sj, tmp_path):
        path = tmp_path / "q.jsonl"
        log = QueryLogger(path=path)
        solver = make_solver(sj, query_log=log)
        ids = [solver.top_k(s, category="T2", k=3).query_id for s in (3, 40, 99)]
        log.close()
        events = parse_query_log(path.read_text())
        assert [e["query_id"] for e in events] == ids

    def test_logging_does_not_change_answers(self, sj, tmp_path):
        plain = make_solver(sj).top_k(3, category="T2", k=5)
        log = QueryLogger(path=tmp_path / "q.jsonl", slow_ms=0.0)
        solver = make_solver(sj, query_log=log, tracer=SpanTracer())
        logged = solver.top_k(3, category="T2", k=5)
        log.close()
        assert logged.lengths == plain.lengths
        assert [p.nodes for p in logged.paths] == [p.nodes for p in plain.paths]
