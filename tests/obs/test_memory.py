"""Memory telemetry: tracemalloc phases, RSS gauge, pool byte accounting."""

from __future__ import annotations

import tracemalloc

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.graph.csr import shared_csr
from repro.obs.memory import (
    MemoryTelemetry,
    graph_pool_bytes,
    peak_rss_bytes,
    scratch_pool_bytes,
)
from repro.obs.metrics import MetricsRegistry
from repro.pathing.flat import FlatScratch
from repro.pathing.native import NativeScratch


@pytest.fixture(scope="module")
def sj():
    return road_network("SJ")


@pytest.fixture(autouse=True)
def no_ambient_tracing():
    """These tests own tracemalloc; fail fast if something leaks it."""
    assert not tracemalloc.is_tracing()
    yield
    assert not tracemalloc.is_tracing()


class TestPeakRss:
    def test_positive_and_plausible(self):
        rss = peak_rss_bytes()
        assert rss > 1024 * 1024  # a Python process is at least 1 MiB
        assert rss < 1 << 44

    def test_monotone(self):
        assert peak_rss_bytes() <= peak_rss_bytes()


class TestScratchBytes:
    def test_flat_scratch_nbytes_nominal(self):
        assert FlatScratch(100).nbytes() == 100 * 3 * 8

    def test_native_scratch_nbytes_exact(self, sj):
        csr = shared_csr(sj.graph)
        scratch = NativeScratch(csr.n, csr.m)
        total = scratch.nbytes()
        assert total == sum(
            getattr(scratch, name).nbytes
            for name in (
                "dist", "parent", "stamp", "gen", "hp", "hn", "hs",
                "path", "dists", "counters",
            )
        )
        assert total > csr.n * 8  # at least the distance array

    def test_pool_bytes_track_checkin(self, sj):
        csr = shared_csr(sj.graph)
        csr._scratch_pool.clear()
        assert scratch_pool_bytes(csr)["flat_scratch_pool_bytes"] == 0
        csr._scratch_pool.append(FlatScratch(csr.n))
        assert (
            scratch_pool_bytes(csr)["flat_scratch_pool_bytes"]
            == csr.n * 3 * 8
        )
        csr._scratch_pool.clear()

    def test_graph_pool_bytes_tolerates_none_and_cold_graphs(self, sj):
        class Cold:
            csr_cache = None

        totals = graph_pool_bytes(None, Cold(), object())
        assert totals == {
            "flat_scratch_pool_bytes": 0,
            "native_scratch_pool_bytes": 0,
        }
        # A warm graph contributes its pooled bytes.
        shared_csr(sj.graph)._scratch_pool.append(FlatScratch(sj.n))
        try:
            assert graph_pool_bytes(sj.graph)["flat_scratch_pool_bytes"] > 0
        finally:
            shared_csr(sj.graph)._scratch_pool.pop()


class TestMemoryTelemetry:
    def test_start_stop_ownership(self):
        mem = MemoryTelemetry()
        assert not mem.active
        mem.start()
        assert mem.active
        mem.stop()
        assert not tracemalloc.is_tracing()

    def test_does_not_stop_foreign_tracing(self):
        tracemalloc.start()
        try:
            mem = MemoryTelemetry().start()  # no-op: already tracing
            mem.stop()
            assert tracemalloc.is_tracing()  # left alone
        finally:
            tracemalloc.stop()

    def test_context_manager(self):
        with MemoryTelemetry() as mem:
            assert mem.active
        assert not tracemalloc.is_tracing()

    def test_phase_records_alloc_and_peak(self):
        reg = MetricsRegistry()
        with MemoryTelemetry() as mem:
            with mem.phase("search", reg):
                keep = [bytearray(64 * 1024) for _ in range(8)]
            del keep
        assert reg.counters["mem_search_alloc_bytes"] >= 8 * 64 * 1024
        assert reg.gauges["mem_search_peak_bytes"] >= 8 * 64 * 1024

    def test_phase_net_alloc_clamped_at_zero(self):
        ballast = [bytearray(64 * 1024) for _ in range(8)]
        reg = MetricsRegistry()
        with MemoryTelemetry() as mem:
            with mem.phase("free_only", reg):
                ballast.clear()  # phase frees more than it allocates
        assert reg.counters["mem_free_only_alloc_bytes"] == 0

    def test_phase_noop_without_tracing_or_registry(self):
        mem = MemoryTelemetry()
        reg = MetricsRegistry()
        with mem.phase("p", reg):  # tracing never started
            pass
        assert reg.counters == {} and reg.gauges == {}
        with MemoryTelemetry() as active:
            with active.phase("p", None):  # no registry
                pass

    def test_record_gauges(self):
        reg = MetricsRegistry()
        MemoryTelemetry().record_gauges(reg)
        assert reg.gauges["process_peak_rss_bytes"] == peak_rss_bytes()
        assert "tracemalloc_current_bytes" not in reg.gauges
        with MemoryTelemetry() as mem:
            mem.record_gauges(reg)
            assert reg.gauges["tracemalloc_peak_bytes"] >= 0
        MemoryTelemetry().record_gauges(None)  # must not raise


class TestSolverIntegration:
    def make_solver(self, sj, **kwargs):
        kwargs.setdefault("landmarks", 8)
        return KPJSolver(sj.graph, sj.categories, **kwargs)

    def test_query_records_phase_attribution(self, sj):
        reg = MetricsRegistry()
        with MemoryTelemetry() as mem:
            solver = self.make_solver(sj, metrics=reg, memory=mem)
            solver.top_k(3, category="T2", k=3)
        assert "mem_prepare_alloc_bytes" in reg.counters
        assert "mem_search_alloc_bytes" in reg.counters
        assert reg.gauges["mem_search_peak_bytes"] > 0
        assert reg.gauges["process_peak_rss_bytes"] > 0
        assert reg.gauges["tracemalloc_peak_bytes"] > 0
        assert reg.gauges["flat_scratch_pool_bytes"] >= 0

    def test_memory_without_tracing_still_stamps_rss(self, sj):
        reg = MetricsRegistry()
        solver = self.make_solver(sj, metrics=reg, memory=MemoryTelemetry())
        solver.top_k(3, category="T2", k=3)
        assert reg.gauges["process_peak_rss_bytes"] > 0
        assert "mem_search_alloc_bytes" not in reg.counters

    def test_telemetry_does_not_change_answers(self, sj):
        plain = self.make_solver(sj).top_k(3, category="T2", k=5)
        with MemoryTelemetry() as mem:
            traced = self.make_solver(
                sj, metrics=MetricsRegistry(), memory=mem
            ).top_k(3, category="T2", k=5)
        assert traced.lengths == plain.lengths
