"""Unit tests for the query-lifecycle metrics registry."""

import math
import pickle

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    LOADTEST_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    SEARCH_PHASES,
    log_buckets,
    maybe_phase,
    parse_prom,
)


class TestHistogram:
    def test_observe_and_count(self):
        hist = Histogram((1.0, 10.0))
        for value in (0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.total == 4
        assert hist.sum == pytest.approx(56.0)
        assert hist.counts == [2, 1, 1]  # <=1, <=10, overflow

    def test_boundary_lands_in_its_bucket(self):
        hist = Histogram((1.0, 10.0))
        hist.observe(1.0)
        assert hist.counts[0] == 1  # le semantics: 1.0 <= 1.0

    def test_quantile_interpolates(self):
        hist = Histogram((10.0,))
        for _ in range(10):
            hist.observe(5.0)
        # All mass in [0, 10]: the median interpolates to mid-bucket.
        assert hist.quantile(0.5) == pytest.approx(5.0)

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_overflow_reports_top_bound(self):
        hist = Histogram((1.0,))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 1.0

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.0)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    # The edge cases below pin the documented quantile contract
    # (Histogram.quantile docstring); a behaviour change here is a
    # breaking change, not a refactor.
    def test_quantile_zero_raises_even_when_populated(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(0.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.5)

    def test_quantile_empty_is_nan_for_every_valid_q(self):
        hist = Histogram((1.0, 10.0))
        for q in (1e-9, 0.5, 0.95, 1.0):
            assert math.isnan(hist.quantile(q))

    def test_quantile_all_overflow_reports_top_finite_bound(self):
        # Every observation above the top bucket: all quantiles clamp
        # to the largest finite bound, never inf, never the raw value.
        hist = Histogram((1.0, 10.0))
        for _ in range(5):
            hist.observe(1e9)
        for q in (0.01, 0.5, 1.0):
            assert hist.quantile(q) == 10.0

    def test_quantile_overflow_with_no_finite_buckets_is_inf(self):
        hist = Histogram(())
        hist.observe(42.0)
        assert hist.quantile(0.5) == math.inf

    def test_quantile_exact_boundary_rank_reports_upper_bound(self):
        # One observation per bucket; q=0.5 ranks exactly at the first
        # bucket's cumulative edge and must report that bucket's le.
        hist = Histogram((1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        assert hist.quantile(0.5) == pytest.approx(1.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_q1_single_observation_stays_in_bucket(self):
        # q=1.0 with all mass in one bucket interpolates to that
        # bucket's upper bound — an off-by-one would report the next.
        hist = Histogram((1.0, 10.0, 100.0))
        hist.observe(5.0)
        assert hist.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_first_bucket_interpolates_from_zero(self):
        hist = Histogram((10.0,))
        for _ in range(4):
            hist.observe(1.0)
        # Median of mass in [0, 10] interpolates from lo=0.
        assert hist.quantile(0.5) == pytest.approx(5.0)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram((5.0, 1.0))

    def test_merge_adds_bucketwise(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.total == 2
        assert a.counts == [1, 1]
        assert a.sum == pytest.approx(2.5)

    def test_merge_rejects_mismatched_buckets(self):
        with pytest.raises(ValueError, match="different buckets"):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_dict_round_trip(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.5)
        clone = Histogram.from_dict(hist.as_dict())
        assert clone.as_dict() == hist.as_dict()


class TestMetricsRegistry:
    def test_counters_add(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counters == {"a": 5}

    def test_gauges_keep_max(self):
        reg = MetricsRegistry()
        reg.set_gauge("peak", 3)
        reg.set_gauge("peak", 1)
        reg.set_gauge("peak", 7)
        assert reg.gauges == {"peak": 7}

    def test_observe_phase_accumulates(self):
        reg = MetricsRegistry()
        reg.observe_phase("p", 0.5)
        reg.observe_phase("p", 0.25, calls=3)
        assert reg.phases["p"] == [0.75, 4]

    def test_phase_timer_records_positive_time(self):
        reg = MetricsRegistry()
        with reg.phase_timer("p"):
            sum(range(1000))
        seconds, calls = reg.phases["p"]
        assert seconds > 0
        assert calls == 1

    def test_phase_timer_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.phase_timer("p"):
                raise RuntimeError("boom")
        assert reg.phases["p"][1] == 1

    def test_phase_seconds_subsets(self):
        reg = MetricsRegistry()
        reg.observe_phase("a", 1.0)
        reg.observe_phase("b", 2.0)
        assert reg.phase_seconds() == pytest.approx(3.0)
        assert reg.phase_seconds(["a"]) == pytest.approx(1.0)
        assert reg.phase_seconds(["missing"]) == 0.0

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        a.set_gauge("g", 5)
        b.set_gauge("g", 3)
        a.observe_phase("p", 1.0)
        b.observe_phase("p", 0.5, calls=2)
        b.observe("h", 4.0)
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.gauges["g"] == 5  # max, not sum
        assert a.phases["p"] == [1.5, 3]
        assert a.histograms["h"].total == 1

    def test_merge_accepts_snapshot_mapping(self):
        src = MetricsRegistry()
        src.inc("c", 2)
        src.observe("h", 1.0)
        dst = MetricsRegistry()
        dst.merge(src.as_dict())
        assert dst.counters["c"] == 2
        assert dst.histograms["h"].total == 1

    def test_snapshot_is_picklable(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("h", 1.0)
        snapshot = reg.as_dict()
        clone = MetricsRegistry.from_dict(pickle.loads(pickle.dumps(snapshot)))
        assert clone.as_dict() == snapshot

    def test_merge_stats_folds_nonzero_counters(self):
        from repro.core.stats import SearchStats

        reg = MetricsRegistry()
        reg.merge_stats(SearchStats(nodes_settled=7))
        assert reg.counters == {"nodes_settled": 7}

    def test_report_structure(self):
        reg = MetricsRegistry()
        reg.observe_phase("prepare", 0.002)
        reg.inc("queries", 3)
        reg.set_gauge("peak", 9)
        for value in (1.0, 2.0, 3.0):
            reg.observe("query_latency_ms", value)
        report = reg.report()
        assert report["phases"]["prepare"]["ms"] == pytest.approx(2.0)
        assert report["counters"] == {"queries": 3}
        assert report["gauges"] == {"peak": 9}
        hist = report["histograms"]["query_latency_ms"]
        assert hist["count"] == 3
        assert hist["p50"] <= hist["p95"] <= hist["p99"]

    def test_render_text_mentions_everything(self):
        reg = MetricsRegistry()
        reg.observe_phase("prepare", 0.001)
        reg.inc("queries")
        reg.set_gauge("peak", 2)
        reg.observe("lat", 1.0)
        text = reg.render_text()
        for needle in ("prepare", "queries", "peak", "lat", "p95"):
            assert needle in text

    def test_render_text_empty(self):
        assert "(empty)" in MetricsRegistry().render_text()


class TestMaybePhase:
    def test_none_is_noop_context(self):
        with maybe_phase(None, "p"):
            pass  # must not raise, must not allocate a registry

    def test_registry_records(self):
        reg = MetricsRegistry()
        with maybe_phase(reg, "p"):
            pass
        assert "p" in reg.phases


class TestPromExposition:
    def make_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.observe_phase("prepare", 0.001)
        reg.observe_phase("comp_sp", 0.002, calls=2)
        reg.inc("queries", 5)
        reg.set_gauge("spt_heap_peak", 17)
        for value in (0.2, 3.0, 700.0):
            reg.observe("query_latency_ms", value)
        return reg

    def test_round_trip(self):
        reg = self.make_registry()
        samples = parse_prom(reg.render_prom())
        assert samples[
            ("kpj_phase_seconds_total", (("phase", "prepare"),))
        ] == pytest.approx(0.001)
        assert samples[("kpj_phase_calls_total", (("phase", "comp_sp"),))] == 2
        assert samples[("kpj_queries_total", ())] == 5
        assert samples[("kpj_spt_heap_peak", ())] == 17
        assert samples[("kpj_query_latency_ms_count", ())] == 3
        assert samples[("kpj_query_latency_ms_bucket", (("le", "+Inf"),))] == 3

    def test_histogram_buckets_are_cumulative(self):
        reg = self.make_registry()
        samples = parse_prom(reg.render_prom())
        counts = [
            samples[("kpj_query_latency_ms_bucket", (("le", f"{b:g}"),))]
            for b in DEFAULT_LATENCY_BUCKETS_MS
        ]
        assert counts == sorted(counts)  # monotone non-decreasing
        assert counts[-1] == 3

    def test_prefix_override(self):
        samples = parse_prom(self.make_registry().render_prom(prefix="x"))
        assert ("x_queries_total", ()) in samples

    def test_deterministic_output(self):
        reg = self.make_registry()
        assert reg.render_prom() == reg.render_prom()

    def test_parser_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            parse_prom("kpj_x_total NaN\n")

    def test_parser_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            parse_prom("kpj_x_total +Inf\n")

    def test_parser_rejects_negative_by_default(self):
        with pytest.raises(ValueError, match="negative"):
            parse_prom("kpj_x_total -1\n")
        assert parse_prom("kpj_x_total -1\n", require_non_negative=False) == {
            ("kpj_x_total", ()): -1.0
        }

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prom("not a metric line\n" * 2)
        with pytest.raises(ValueError, match="unterminated"):
            parse_prom('kpj_x{phase="p" 1\n')
        with pytest.raises(ValueError, match="unparseable"):
            parse_prom("kpj_x_total twelve\n")

    def test_parser_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prom("kpj_x_total 1\nkpj_x_total 2\n")

    def test_parser_skips_comments_and_blanks(self):
        assert parse_prom("# HELP something\n\n# TYPE x counter\n") == {}


class TestSearchPhases:
    def test_driver_phases_are_a_known_set(self):
        assert set(SEARCH_PHASES) == {"comp_sp", "spt_grow", "test_lb", "division"}


class TestLogBuckets:
    def test_bounds_are_strictly_increasing_and_span_range(self):
        bounds = log_buckets(0.1, 1000.0, 5)
        assert list(bounds) == sorted(bounds)
        assert len(set(bounds)) == len(bounds)
        assert bounds[0] == pytest.approx(0.1)
        assert bounds[-1] >= 1000.0

    def test_per_decade_controls_resolution(self):
        coarse = log_buckets(1.0, 1000.0, 1)
        fine = log_buckets(1.0, 1000.0, 10)
        assert len(coarse) == 4  # 1, 10, 100, 1000
        assert len(fine) > len(coarse)
        # Consecutive bounds keep a ~constant ratio (log spacing).
        ratios = [b / a for a, b in zip(fine, fine[1:])]
        assert max(ratios) / min(ratios) == pytest.approx(1.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError, match="lo must be finite"):
            log_buckets(0.0, 10.0)
        with pytest.raises(ValueError, match="lo must be finite"):
            log_buckets(math.inf, 10.0)
        with pytest.raises(ValueError, match="hi must be finite"):
            log_buckets(10.0, 10.0)
        with pytest.raises(ValueError, match="per_decade"):
            log_buckets(1.0, 10.0, 0)

    def test_histogram_accepts_log_buckets(self):
        hist = Histogram(log_buckets(0.1, 100.0, 3))
        hist.observe(5.0)
        assert hist.total == 1

    def test_default_buckets_collapse_deep_tail_to_last_finite_bound(self):
        """The edge case that motivated log_buckets: every sample past
        the top DEFAULT bound lands in the +Inf overflow bucket, and
        any quantile that resolves there collapses to the last finite
        bound — 6 s of queueing reads as exactly 5000.0 ms.
        """
        queueing = Histogram(DEFAULT_LATENCY_BUCKETS_MS)
        for _ in range(1000):
            queueing.observe(6000.0)
        assert queueing.quantile(0.999) == DEFAULT_LATENCY_BUCKETS_MS[-1]
        assert queueing.quantile(0.5) == DEFAULT_LATENCY_BUCKETS_MS[-1]

    def test_loadtest_buckets_resolve_the_same_tail(self):
        hist = Histogram(LOADTEST_LATENCY_BUCKETS_MS)
        for _ in range(1000):
            hist.observe(6000.0)
        p999 = hist.quantile(0.999)
        # Resolved within one log-spaced bucket of the true value, not
        # pinned to the range's top bound.
        assert 6000.0 <= p999 < LOADTEST_LATENCY_BUCKETS_MS[-1]
        assert p999 == pytest.approx(6000.0, rel=0.65)

    def test_loadtest_buckets_span_sub_ms_to_minutes(self):
        assert LOADTEST_LATENCY_BUCKETS_MS[0] <= 0.05
        assert LOADTEST_LATENCY_BUCKETS_MS[-1] >= 120_000.0
