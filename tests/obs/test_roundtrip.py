"""to_json/from_json round-trips for SearchStats and MetricsRegistry."""

from __future__ import annotations

import json

import pytest

from repro.core.stats import SearchStats
from repro.obs.metrics import MetricsRegistry


class TestSearchStatsRoundTrip:
    def test_round_trip_preserves_every_counter(self):
        stats = SearchStats(
            shortest_path_computations=3,
            lb_tests=17,
            lb_test_failures=5,
            nodes_settled=1234,
            subspaces_created=40,
            subspaces_pruned=31,
            prepared_cache_hits=2,
        )
        restored = SearchStats.from_json(stats.to_json())
        assert restored == stats
        assert restored.as_dict() == stats.as_dict()

    def test_encoding_is_stable_json(self):
        text = SearchStats(lb_tests=1).to_json()
        data = json.loads(text)
        assert data["lb_tests"] == 1
        assert list(data) == sorted(data)  # sorted keys: diffable artifacts

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(TypeError):
            SearchStats.from_json('{"not_a_counter": 1}')


class TestMetricsRegistryRoundTrip:
    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("queries", 3)
        reg.set_gauge("prepared_cache_entries", 7)
        reg.observe_phase("comp_sp", 0.25, calls=2)
        reg.observe_phase("test_lb", 0.0625)
        reg.observe("query_latency_ms", 12.5)
        reg.observe("query_latency_ms", 80.0)
        return reg

    def test_round_trip_preserves_report(self):
        reg = self._populated()
        restored = MetricsRegistry.from_json(reg.to_json())
        assert restored.as_dict() == reg.as_dict()
        assert restored.report() == reg.report()
        assert restored.render_prom() == reg.render_prom()

    def test_round_tripped_registry_still_merges(self):
        reg = self._populated()
        restored = MetricsRegistry.from_json(reg.to_json())
        restored.merge(reg)
        assert restored.counters["queries"] == 6
        assert restored.phases["comp_sp"] == [0.5, 4]

    def test_json_has_no_nonscalar_surprises(self):
        # the artifact must survive a strict JSON round-trip unchanged
        text = self._populated().to_json()
        assert json.loads(text) == json.loads(
            MetricsRegistry.from_json(text).to_json()
        )
