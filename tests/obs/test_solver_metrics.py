"""Solver-level observability: per-query registries, elapsed_ms, tiling."""

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.obs.metrics import MetricsRegistry, SEARCH_PHASES
from repro.pathing.kernels import KERNELS


@pytest.fixture(scope="module")
def sj():
    return road_network("SJ")


def make_solver(sj, **kwargs):
    kwargs.setdefault("landmarks", 8)
    return KPJSolver(sj.graph, sj.categories, **kwargs)


class TestDisabledPath:
    def test_metrics_default_none(self, sj):
        solver = make_solver(sj)
        assert solver.metrics is None
        result = solver.top_k(0, category="T2", k=3)
        assert result.metrics is None
        assert result.elapsed_ms > 0  # recorded even with metrics off

    def test_results_identical_with_and_without_metrics(self, sj):
        plain = make_solver(sj).top_k(100, category="T2", k=5)
        observed = make_solver(sj, metrics=MetricsRegistry()).top_k(
            100, category="T2", k=5
        )
        assert [p.nodes for p in plain.paths] == [p.nodes for p in observed.paths]
        assert [p.length for p in plain.paths] == [p.length for p in observed.paths]

    def test_to_dict_omits_metrics_when_disabled(self, sj):
        result = make_solver(sj).top_k(0, category="T2", k=2)
        d = result.to_dict()
        assert "metrics" not in d
        assert d["elapsed_ms"] == result.elapsed_ms


class TestEnabledPath:
    def test_snapshot_rides_on_result(self, sj):
        reg = MetricsRegistry()
        solver = make_solver(sj, metrics=reg)
        result = solver.top_k(0, category="T2", k=5)
        snap = result.metrics
        assert snap is not None
        assert snap["counters"]["queries"] == 1
        assert "prepare" in snap["phases"]
        assert "comp_sp" in snap["phases"]
        assert "search_other" in snap["phases"]
        assert snap["histograms"]["query_latency_ms"]["total"] == 1

    def test_solver_registry_accumulates(self, sj):
        reg = MetricsRegistry()
        solver = make_solver(sj, metrics=reg)
        for source in (0, 17, 100):
            solver.top_k(source, category="T2", k=3)
        assert reg.counters["queries"] == 3
        assert reg.histograms["query_latency_ms"].total == 3
        assert reg.phases["prepare"][1] == 3

    def test_landmark_build_recorded_at_construction(self, sj):
        reg = MetricsRegistry()
        make_solver(sj, metrics=reg)
        seconds, calls = reg.phases["landmark_build"]
        assert calls == 1
        assert seconds > 0
        assert reg.gauges["landmark_matrix_bytes"] > 0

    def test_prepared_cache_counters_and_gauges(self, sj):
        reg = MetricsRegistry()
        solver = make_solver(sj, metrics=reg)
        solver.top_k(0, category="T2", k=2)
        solver.top_k(5, category="T2", k=2)
        assert reg.counters["prepared_cache_misses"] == 1
        assert reg.counters["prepared_cache_hits"] == 1
        assert reg.gauges["prepared_cache_entries"] == 1
        assert reg.gauges["prepared_cache_bytes"] == sj.graph.n * 8

    def test_prepare_method_records_phase(self, sj):
        reg = MetricsRegistry()
        solver = make_solver(sj, metrics=reg)
        solver.prepare(category="T2")
        assert reg.phases["prepare"][1] == 1
        assert reg.counters["prepared_cache_misses"] == 1

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_flat_engine_gauges(self, sj, kernel):
        reg = MetricsRegistry()
        solver = make_solver(sj, metrics=reg, kernel=kernel)
        solver.top_k(0, category="T2", k=5, algorithm="iter-bound-spti")
        assert reg.gauges["iterbound_queue_peak"] >= 1
        if kernel == "flat":
            assert reg.counters["flat_query_contexts"] == 1
            assert reg.gauges["spt_heap_peak"] >= 1
            assert reg.gauges["spt_settled_peak"] >= 1


class TestPhaseTiling:
    """Acceptance criterion: phase sum within 10% of elapsed_ms."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize(
        "algorithm", ["iter-bound-spti", "iter-bound", "iter-bound-sptp", "da"]
    )
    def test_phases_tile_elapsed(self, sj, kernel, algorithm):
        solver = make_solver(sj, metrics=MetricsRegistry(), kernel=kernel)
        result = solver.top_k(0, category="T2", k=10, algorithm=algorithm)
        snap = MetricsRegistry.from_dict(result.metrics)
        phase_ms = snap.phase_seconds() * 1000.0
        assert phase_ms <= result.elapsed_ms * 1.05
        assert phase_ms >= result.elapsed_ms * 0.90

    def test_search_other_is_residue_of_named_phases(self, sj):
        solver = make_solver(sj, metrics=MetricsRegistry())
        result = solver.top_k(0, category="T2", k=5)
        snap = MetricsRegistry.from_dict(result.metrics)
        named = snap.phase_seconds(SEARCH_PHASES)
        residue = snap.phases["search_other"][0]
        assert residue >= 0
        # prepare + driver phases + residue stay under the wall clock.
        total = snap.phase_seconds()
        assert total * 1000.0 <= result.elapsed_ms * 1.05
        assert named > 0
