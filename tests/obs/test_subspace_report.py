"""SubspaceTreeReport: reconstruction from spans and SearchTrace."""

from __future__ import annotations

import pytest

from repro.core.iter_bound import iter_bound
from repro.core.kpj import KPJSolver
from repro.core.trace import SearchTrace
from repro.datasets.registry import road_network
from repro.graph.virtual import build_query_graph
from repro.landmarks.index import ZERO_BOUNDS
from repro.obs.subspace_report import DepthRow, SubspaceTreeReport
from repro.obs.tracing import SpanTracer
from repro.pathing.kernels import KERNELS


@pytest.fixture(scope="module")
def sj():
    return road_network("SJ")


def span(name, attrs):
    return {"id": 0, "parent": None, "name": name, "cat": "phase",
            "ts": 0.0, "dur": 0.0, "pid": 1, "attrs": attrs}


class TestFromSpans:
    def test_empty(self):
        report = SubspaceTreeReport.from_spans(None)
        assert report.rows == {}
        assert report.subspaces_created is None
        assert report.subspaces_pruned is None
        assert "no subspace events" in report.render()

    def test_counts_and_totals(self):
        snapshot = {
            "spans": [
                span("division", {"depth": 0, "children": 5, "pruned": 2}),
                span("test_lb", {"depth": 1, "verdict": "hit"}),
                span("test_lb", {"depth": 1, "verdict": "miss"}),
                span("test_lb", {"depth": 2, "verdict": "retire"}),
                span("division", {"depth": 1, "children": 3, "pruned": 0}),
                span("iter_bound",
                     {"bound_kind": "spt_i", "leftover": 4, "results": 2}),
            ],
            "evicted": 0,
        }
        report = SubspaceTreeReport.from_spans(snapshot)
        assert report.bound_kind == "spt_i"
        assert report.lb_tests == 3
        assert report.lb_test_failures == 2  # miss + retire
        assert report.outputs == 2
        assert report.subspaces_created == 1 + 5 + 3
        assert report.subspaces_pruned == 2 + 1 + 4  # born + retired + leftover
        assert report.max_depth == 2
        assert report.rows[1] == DepthRow(
            depth=1, tested=2, hits=1, misses=1, expanded=1, children=3
        )
        assert report.complete
        text = report.render()
        assert "bound: spt_i" in text
        assert "created=9" in text and "pruned=7" in text

    def test_eviction_marks_incomplete(self):
        report = SubspaceTreeReport.from_spans({"spans": [], "evicted": 3})
        assert not report.complete

    def test_accepts_live_tracer(self):
        tracer = SpanTracer()
        tracer.add("test_lb", 0.0, 0.1, cat="phase",
                   attrs={"depth": 0, "verdict": "hit"})
        report = SubspaceTreeReport.from_spans(tracer)
        assert report.lb_tests == 1


class TestFromSearchTrace:
    def test_matches_span_reconstruction(self, sj):
        """explain --tree and the tracer share one reconstruction."""
        destinations = sj.categories.nodes_of("T2")
        qg = build_query_graph(sj.graph, (3,), destinations)

        trace = SearchTrace()
        tracer = SpanTracer()
        paths = iter_bound(qg, 6, ZERO_BOUNDS, trace=trace, tracer=tracer)
        assert paths

        from_trace = SubspaceTreeReport.from_search_trace(trace)
        from_spans = SubspaceTreeReport.from_spans(tracer)
        # per-depth verdict tallies agree between the two narrations
        assert set(from_trace.rows) == set(from_spans.rows)
        for depth, row in from_trace.rows.items():
            other = from_spans.rows[depth]
            assert (row.tested, row.hits, row.misses, row.retired,
                    row.expanded) == (
                other.tested, other.hits, other.misses, other.retired,
                other.expanded), depth
        # SearchTrace narration has no fan-out: totals stay None
        assert from_trace.subspaces_created is None
        assert from_trace.subspaces_pruned is None
        assert from_spans.subspaces_created is not None

    def test_render_without_divisions_omits_fanout_columns(self, sj):
        destinations = sj.categories.nodes_of("T2")
        qg = build_query_graph(sj.graph, (3,), destinations)
        trace = SearchTrace()
        iter_bound(qg, 3, ZERO_BOUNDS, trace=trace)
        text = SubspaceTreeReport.from_search_trace(trace).render()
        assert "children" not in text
        assert "tested" in text


class TestSolverParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_report_equals_stats_counters(self, sj, kernel):
        solver = KPJSolver(
            sj.graph, sj.categories, landmarks=8, kernel=kernel,
            tracer=SpanTracer(),
        )
        result = solver.top_k(14, category="T2", k=10)
        report = SubspaceTreeReport.from_spans(result.trace)
        assert report.lb_tests == result.stats.lb_tests
        assert report.lb_test_failures == result.stats.lb_test_failures
        assert report.subspaces_created == result.stats.subspaces_created
        assert report.subspaces_pruned == result.stats.subspaces_pruned
        ratio = report.pruned_expanded_ratio
        assert ratio is None or ratio >= 0
