"""Span tracer: recording, exports, solver integration, hot-path cost."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.obs.subspace_report import SubspaceTreeReport
from repro.pathing.kernels import KERNELS
from repro.obs.tracing import (
    SpanTracer,
    chrome_trace,
    folded_stacks,
    maybe_span,
    phase_durations,
    render_tree,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def sj():
    return road_network("SJ")


def make_solver(sj, **kwargs):
    kwargs.setdefault("landmarks", 8)
    return KPJSolver(sj.graph, sj.categories, **kwargs)


class TestSpanTracer:
    def test_nesting_and_attrs(self):
        tracer = SpanTracer()
        with tracer.span("outer", cat="query", k=3) as outer:
            with tracer.span("inner", cat="phase") as inner:
                time.sleep(0.001)
            outer["attrs"]["late"] = True
        spans = tracer.spans
        assert [s["name"] for s in spans] == ["inner", "outer"]  # children first
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert outer["attrs"] == {"k": 3, "late": True}
        assert 0 < inner["dur"] <= outer["dur"]
        # children are contained in the parent interval
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9

    def test_end_closes_forgotten_children(self):
        tracer = SpanTracer()
        outer = tracer.begin("outer")
        tracer.begin("forgotten")
        tracer.end(outer)
        names = {s["name"] for s in tracer.spans}
        assert names == {"outer", "forgotten"}
        assert all(s["dur"] >= 0 for s in tracer.spans)

    def test_add_records_pretimed_span_under_open_parent(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            t0 = time.perf_counter()
            t1 = t0 + 0.25
            span = tracer.add("leaf", t0, t1, cat="phase", attrs={"x": 1})
        assert span["parent"] == outer["id"]
        assert span["dur"] == pytest.approx(0.25)
        assert span["attrs"] == {"x": 1}

    def test_ring_buffer_evicts_oldest(self):
        tracer = SpanTracer(capacity=4)
        for i in range(10):
            tracer.add(f"s{i}", float(i), float(i) + 0.5)
        assert len(tracer) == 4
        assert tracer.evicted == 6
        assert [s["name"] for s in tracer.spans] == ["s6", "s7", "s8", "s9"]
        assert tracer.as_dict()["evicted"] == 6

    def test_sampling_stride(self):
        tracer = SpanTracer(sample_every=3)
        decisions = [tracer.sample() for _ in range(9)]
        assert decisions == [True, False, False] * 3
        assert all(SpanTracer(sample_every=1).sample() for _ in range(5))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)
        with pytest.raises(ValueError):
            SpanTracer(sample_every=0)

    def test_as_dict_includes_open_spans(self):
        tracer = SpanTracer()
        tracer.begin("still-open")
        snap = tracer.as_dict()
        assert len(snap["spans"]) == 1
        assert snap["spans"][0]["attrs"]["open"] is True
        assert snap["spans"][0]["dur"] >= 0
        # the tracer itself is not mutated by snapshotting
        assert len(tracer) == 0

    def test_absorb_rebases_ids_and_reroots(self):
        child = SpanTracer()
        with child.span("query"):
            child.add("leaf", 1.0, 2.0, cat="phase")
        parent = SpanTracer()
        batch = parent.begin("batch", cat="batch")
        parent.absorb(child.as_dict(), parent=batch)
        parent.end(batch)
        spans = {s["name"]: s for s in parent.spans}
        assert spans["query"]["parent"] == batch["id"]
        assert spans["leaf"]["parent"] == spans["query"]["id"]
        ids = [s["id"] for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_absorb_none_is_noop(self):
        tracer = SpanTracer()
        tracer.absorb(None)
        assert len(tracer) == 0

    def test_maybe_span_disabled_is_nullcontext(self):
        with maybe_span(None, "anything") as span:
            assert span is None


class TestChromeExport:
    def _sample_tracer(self):
        tracer = SpanTracer()
        with tracer.span("query", cat="query", algorithm="iter-bound", k=3):
            tracer.add("test_lb", 1.0, 1.5, cat="phase",
                       attrs={"depth": 2, "verdict": "hit", "inf": float("inf")})
        return tracer

    def test_valid_document(self):
        doc = chrome_trace(self._sample_tracer())
        assert validate_chrome_trace(doc) == 2
        assert json.loads(json.dumps(doc)) == doc  # JSON-serialisable
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["query"]["ph"] == "X"
        assert by_name["query"]["cat"] == "query"
        # non-finite attrs are stringified, never emitted as floats
        assert isinstance(by_name["test_lb"]["args"]["inf"], str)

    def test_timestamps_relative_microseconds(self):
        doc = chrome_trace(self._sample_tracer())
        ts = [e["ts"] for e in doc["traceEvents"]]
        assert min(ts) == 0.0
        assert all(t >= 0 for t in ts)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("traceEvents"),
            lambda d: d["traceEvents"].clear(),
            lambda d: d["traceEvents"][0].pop("ph"),
            lambda d: d["traceEvents"][0].update(ph="B"),
            lambda d: d["traceEvents"][0].update(ts=float("nan")),
            lambda d: d["traceEvents"][0].update(dur=-1.0),
            lambda d: d["traceEvents"][0].update(pid="zero"),
            lambda d: d["traceEvents"][0].update(args={"k": [1, 2]}),
        ],
    )
    def test_rejects_malformed(self, mutate):
        doc = chrome_trace(self._sample_tracer())
        mutate(doc)
        with pytest.raises(ValueError):
            validate_chrome_trace(doc)

    def test_render_tree(self):
        text = render_tree(self._sample_tracer())
        assert "query" in text and "test_lb" in text
        assert text.index("query") < text.index("test_lb")
        assert render_tree({"spans": []}) == "(no spans)"

    def test_phase_durations_counts_leaves_only(self):
        tracer = self._sample_tracer()
        totals = phase_durations(tracer)
        assert totals == {"test_lb": pytest.approx(0.5)}


class TestFoldedStacks:
    def _nested_tracer(self):
        tracer = SpanTracer()
        with tracer.span("query"):
            with tracer.span("search"):
                tracer.add("test_lb", 1.0, 1.4)
                tracer.add("test_lb", 1.4, 1.7)
        return tracer

    def test_empty_trace(self):
        assert folded_stacks({"spans": []}) == ""

    def test_self_time_excludes_children(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            tracer.add("inner", 1.0, 2.0)
        lines = dict(
            line.rsplit(" ", 1) for line in folded_stacks(tracer).splitlines()
        )
        assert set(lines) == {"outer", "outer;inner"}
        assert int(lines["outer;inner"]) == 1_000_000  # 1 s in µs
        # outer's self time is its tiny bookkeeping, not the child's 1 s.
        assert 0 < int(lines["outer"]) < 1_000_000

    def test_same_stack_aggregates(self):
        folded = folded_stacks(self._nested_tracer())
        lines = dict(line.rsplit(" ", 1) for line in folded.splitlines())
        # Both test_lb leaves fold into one line: 0.4 s + 0.3 s.
        assert int(lines["query;search;test_lb"]) == pytest.approx(
            700_000, abs=2
        )

    def test_sub_microsecond_spans_stay_visible(self):
        tracer = SpanTracer()
        tracer.add("blink", 1.0, 1.0 + 1e-9)
        assert folded_stacks(tracer) == "blink 1"

    def test_semicolons_in_names_escaped(self):
        tracer = SpanTracer()
        tracer.add("a;b", 1.0, 1.5)
        (line,) = folded_stacks(tracer).splitlines()
        assert line.startswith("a_b ")

    def test_deterministic_and_sorted(self):
        tracer = self._nested_tracer()
        folded = folded_stacks(tracer)
        assert folded == folded_stacks(tracer.as_dict())
        stacks = [line.rsplit(" ", 1)[0] for line in folded.splitlines()]
        assert stacks == sorted(stacks)

    def test_traced_query_folds(self, sj):
        result = make_solver(sj, tracer=SpanTracer()).top_k(
            0, category="T2", k=3
        )
        folded = folded_stacks(result.trace)
        stacks = {line.rsplit(" ", 1)[0] for line in folded.splitlines()}
        assert any(s.startswith("query;search") for s in stacks)
        # Every line is "<stack> <integer µs>" — the flamegraph contract.
        for line in folded.splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) >= 1


class TestSolverIntegration:
    def test_trace_none_by_default(self, sj):
        result = make_solver(sj).top_k(0, category="T2", k=3)
        assert result.trace is None
        assert "trace" not in result.to_dict()

    def test_sampled_query_records_span_tree(self, sj):
        tracer = SpanTracer()
        solver = make_solver(sj, tracer=tracer)
        result = solver.top_k(3, category="T2", k=5)
        assert result.trace is not None
        names = {s["name"] for s in result.trace["spans"]}
        assert {"query", "prepare", "search", "comp_sp", "iter_bound",
                "iterate", "test_lb", "division", "spt_grow"} <= names
        # the solver tracer absorbed the same tree
        assert {s["name"] for s in tracer.spans} == names
        assert result.to_dict()["trace"] == result.trace

    def test_root_span_tiles_elapsed_ms(self, sj):
        solver = make_solver(sj, tracer=SpanTracer())
        result = solver.top_k(3, category="T2", k=5)
        root = [s for s in result.trace["spans"] if s["name"] == "query"]
        assert len(root) == 1
        root_ms = root[0]["dur"] * 1e3
        # acceptance criterion: spans tile within 10% of elapsed_ms
        assert root_ms <= result.elapsed_ms
        assert root_ms >= 0.9 * result.elapsed_ms
        # and the children tile the root: prepare + search cover it
        covered = sum(
            s["dur"] for s in result.trace["spans"]
            if s["name"] in ("prepare", "search")
        )
        assert covered <= root[0]["dur"]

    def test_sample_every_skips_queries(self, sj):
        solver = make_solver(sj, tracer=SpanTracer(sample_every=2))
        first = solver.top_k(3, category="T2", k=3)
        second = solver.top_k(5, category="T2", k=3)
        third = solver.top_k(7, category="T2", k=3)
        assert first.trace is not None
        assert second.trace is None
        assert third.trace is not None

    def test_results_identical_with_and_without_tracer(self, sj):
        plain = make_solver(sj).top_k(100, category="T2", k=5)
        traced = make_solver(sj, tracer=SpanTracer()).top_k(
            100, category="T2", k=5
        )
        assert [p.nodes for p in plain.paths] == [p.nodes for p in traced.paths]
        assert plain.lengths == traced.lengths

    def test_prepare_span_records_cache_verdict(self, sj):
        solver = make_solver(sj, tracer=SpanTracer())
        first = solver.top_k(3, category="T2", k=3)
        second = solver.top_k(5, category="T2", k=3)

        def cache_attr(result):
            (prep,) = [
                s for s in result.trace["spans"] if s["name"] == "prepare"
            ]
            return prep["attrs"]["cache"]

        assert cache_attr(first) == "miss"
        assert cache_attr(second) == "hit"

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_report_totals_match_stats(self, sj, kernel):
        """SubspaceTreeReport from spans == SearchStats, both kernels."""
        solver = make_solver(sj, kernel=kernel, tracer=SpanTracer())
        for algorithm in ("iter-bound", "iter-bound-sptp", "iter-bound-spti"):
            result = solver.top_k(3, category="T2", k=8, algorithm=algorithm)
            report = SubspaceTreeReport.from_spans(result.trace)
            stats = result.stats
            assert report.lb_tests == stats.lb_tests, algorithm
            assert report.lb_test_failures == stats.lb_test_failures, algorithm
            assert report.subspaces_created == stats.subspaces_created, algorithm
            assert report.subspaces_pruned == stats.subspaces_pruned, algorithm
            assert report.complete

    def test_traced_query_chrome_trace_validates(self, sj):
        result = make_solver(sj, tracer=SpanTracer()).top_k(
            3, category="T2", k=5
        )
        doc = chrome_trace(result.trace)
        assert validate_chrome_trace(doc) == len(result.trace["spans"])

    def test_bound_kind_per_variant(self, sj):
        solver = make_solver(sj, tracer=SpanTracer())
        expected = {
            "iter-bound": "landmark",
            "iter-bound-sptp": "spt_p",
            "iter-bound-spti": "spt_i",
            "iter-bound-spti-nl": "spt_i",
        }
        for algorithm, kind in expected.items():
            result = solver.top_k(3, category="T2", k=4, algorithm=algorithm)
            (search,) = [
                s for s in result.trace["spans"] if s["name"] == "iter_bound"
            ]
            assert search["attrs"]["bound_kind"] == kind, algorithm


class TestDisabledHotPath:
    def test_disabled_tracer_never_allocates_spans(self, sj, monkeypatch):
        """With tracer=None the span machinery must never be entered."""
        def boom(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("span recorded on the disabled path")

        monkeypatch.setattr(SpanTracer, "begin", boom)
        monkeypatch.setattr(SpanTracer, "end", boom)
        monkeypatch.setattr(SpanTracer, "add", boom)
        monkeypatch.setattr(SpanTracer, "absorb", boom)
        solver = make_solver(sj)
        for algorithm in ("iter-bound", "iter-bound-sptp", "iter-bound-spti"):
            result = solver.top_k(3, category="T2", k=5, algorithm=algorithm)
            assert result.trace is None

    def test_disabled_tracer_no_tracing_allocations(self, sj):
        """tracemalloc sees zero allocations from tracing.py when off."""
        import tracemalloc

        import repro.obs.tracing as tracing_module

        solver = make_solver(sj)
        solver.top_k(3, category="T2", k=5)  # warm caches
        trace_filter = tracemalloc.Filter(True, tracing_module.__file__)
        tracemalloc.start()
        try:
            solver.top_k(3, category="T2", k=5)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        stats = snapshot.filter_traces([trace_filter]).statistics("filename")
        assert stats == [], stats
