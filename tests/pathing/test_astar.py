"""Unit tests for A* and the bounded TestLB kernel (Lemma 5.1)."""

import random

import pytest

from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.pathing.astar import astar_path, bounded_astar_path
from repro.pathing.dijkstra import (
    constrained_shortest_path,
    single_source_distances,
)
from tests.conftest import random_graph

INF = float("inf")


def zero(_):
    return 0.0


def exact_heuristic(graph, target):
    """The perfect (consistent) heuristic: true remaining distance."""
    dist = single_source_distances(graph.reversed_copy(), target)

    def h(v):
        d = dist[v]
        return d if d != INF else 0.0

    return h


class TestAStar:
    def test_zero_heuristic_matches_dijkstra(self):
        rng = random.Random(11)
        for _ in range(15):
            g = random_graph(rng)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            a = astar_path(g, src, dst, zero)
            d = constrained_shortest_path(g, src, dst)
            if d is None:
                assert a is None
            else:
                assert a is not None
                assert a[1] == pytest.approx(d[1])

    def test_exact_heuristic_matches_dijkstra(self):
        rng = random.Random(12)
        for _ in range(15):
            g = random_graph(rng)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            a = astar_path(g, src, dst, exact_heuristic(g, dst))
            d = constrained_shortest_path(g, src, dst)
            if d is None:
                assert a is None
            else:
                assert a is not None
                assert a[1] == pytest.approx(d[1])

    def test_exact_heuristic_settles_fewer_nodes(self):
        g = DiGraph.from_edges(
            6,
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 4, 1.0), (4, 5, 1.0)],
        )
        blind, guided = SearchStats(), SearchStats()
        astar_path(g, 0, 3, zero, stats=blind)
        astar_path(g, 0, 3, exact_heuristic(g, 3), stats=guided)
        assert guided.nodes_settled <= blind.nodes_settled

    def test_constraints_respected(self, diamond_graph):
        found = astar_path(diamond_graph, 0, 3, zero, blocked={1})
        assert found is not None
        assert found[0] == (0, 2, 3)

    def test_source_is_target(self, diamond_graph):
        assert astar_path(diamond_graph, 1, 1, zero, initial_distance=5.0) == (
            (1,),
            5.0,
        )


class TestBoundedAStar:
    """Lemma 5.1: returns sp(S) iff its length <= tau, else None."""

    def test_path_found_at_exact_bound(self, diamond_graph):
        found = bounded_astar_path(diamond_graph, 0, 3, zero, bound=2.0)
        assert found is not None
        assert found[1] == 2.0

    def test_path_rejected_below_length(self, diamond_graph):
        assert bounded_astar_path(diamond_graph, 0, 3, zero, bound=1.9) is None

    def test_lemma_5_1_on_random_graphs(self):
        rng = random.Random(13)
        for _ in range(25):
            g = random_graph(rng)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            exact = constrained_shortest_path(g, src, dst)
            if exact is None:
                continue
            length = exact[1]
            h = exact_heuristic(g, dst)
            assert bounded_astar_path(g, src, dst, h, bound=length) is not None
            if length > 0:
                assert (
                    bounded_astar_path(g, src, dst, h, bound=length * 0.999) is None
                )

    def test_info_pruned_flag_set_on_bound_rejection(self, diamond_graph):
        info = {}
        bounded_astar_path(diamond_graph, 0, 3, zero, bound=0.5, info=info)
        assert info["pruned"] is True

    def test_info_pruned_false_when_exhausted(self):
        # Target unreachable, small graph fully explored, nothing pruned.
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        info = {}
        result = bounded_astar_path(g, 0, 2, zero, bound=100.0, info=info)
        assert result is None
        assert info["pruned"] is False

    def test_start_over_bound_prunes_immediately(self, diamond_graph):
        info = {}
        result = bounded_astar_path(
            diamond_graph, 0, 3, zero, bound=1.0, initial_distance=5.0, info=info
        )
        assert result is None
        assert info["pruned"] is True

    def test_inf_heuristic_prunes_node_entirely(self):
        # h = inf on node 1 forces the longer route through 2.
        g = DiGraph.from_edges(
            4, [(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 5.0)]
        )

        def h(v):
            return INF if v == 1 else 0.0

        found = bounded_astar_path(g, 0, 3, h, bound=10.0)
        assert found is not None
        assert found[0] == (0, 2, 3)
