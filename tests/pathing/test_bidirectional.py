"""Unit tests for bidirectional Dijkstra."""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.pathing.bidirectional import (
    bidirectional_distance,
    bidirectional_shortest_path,
)
from repro.pathing.dijkstra import shortest_path, single_source_distances
from tests.conftest import random_graph

INF = float("inf")


class TestBidirectional:
    def test_diamond(self, diamond_graph):
        found = bidirectional_shortest_path(diamond_graph, 0, 3)
        assert found is not None
        path, length = found
        assert length == 2.0
        assert path == (0, 1, 3)

    def test_source_equals_target(self, diamond_graph):
        assert bidirectional_shortest_path(diamond_graph, 2, 2) == ((2,), 0.0)

    def test_unreachable(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert bidirectional_shortest_path(g, 0, 2) is None
        assert bidirectional_distance(g, 0, 2) == INF

    def test_respects_direction(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert bidirectional_distance(g, 0, 2) == 2.0
        assert bidirectional_distance(g, 2, 0) == INF

    def test_matches_unidirectional_on_random_graphs(self):
        rng = random.Random(151)
        for _ in range(30):
            g = random_graph(rng, min_nodes=6, max_nodes=16)
            src, dst = rng.randrange(g.n), rng.randrange(g.n)
            uni = shortest_path(g, src, dst)
            bi = bidirectional_shortest_path(g, src, dst)
            if uni is None:
                assert bi is None
            else:
                assert bi is not None
                assert bi[1] == pytest.approx(uni[1])
                assert g.path_weight(bi[0]) == pytest.approx(bi[1])
                assert bi[0][0] == src and bi[0][-1] == dst

    def test_distance_matches_dijkstra_all_pairs(self):
        rng = random.Random(152)
        g = random_graph(rng, min_nodes=8, max_nodes=10, bidirectional=True)
        for src in range(g.n):
            dist = single_source_distances(g, src)
            for dst in range(g.n):
                assert bidirectional_distance(g, src, dst) == pytest.approx(
                    dist[dst]
                )

    def test_long_line_meets_in_middle(self):
        g = DiGraph.from_edges(
            101, [(i, i + 1, 1.0) for i in range(100)], bidirectional=True
        )
        found = bidirectional_shortest_path(g, 0, 100)
        assert found is not None
        assert found[1] == 100.0
        assert found[0] == tuple(range(101))
