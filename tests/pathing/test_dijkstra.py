"""Unit tests for Dijkstra and its constrained variant."""

import random

import pytest

from repro.core.stats import SearchStats
from repro.graph.digraph import DiGraph
from repro.pathing.kernels import KERNELS
from repro.pathing.dijkstra import (
    constrained_shortest_path,
    multi_source_distances,
    shortest_path,
    single_source_distances,
)
from tests.conftest import random_graph

INF = float("inf")


class TestSingleSource:
    def test_line_graph(self, line_graph):
        assert single_source_distances(line_graph, 0) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_unreachable_is_inf(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        dist = single_source_distances(g, 0)
        assert dist[2] == INF

    def test_direction_matters(self):
        g = DiGraph.from_edges(2, [(0, 1, 1.0)])
        assert single_source_distances(g, 1)[0] == INF

    def test_cutoff_stops_early(self, line_graph):
        dist = single_source_distances(line_graph, 0, cutoff=2.0)
        assert dist[:3] == [0.0, 1.0, 2.0]
        assert dist[4] == INF

    def test_picks_lighter_route(self, diamond_graph):
        dist = single_source_distances(diamond_graph, 0)
        assert dist[3] == 2.0


class TestMultiSource:
    def test_nearest_source_wins(self, line_graph):
        dist = multi_source_distances(line_graph, (0, 4))
        assert dist == [0.0, 1.0, 2.0, 1.0, 0.0]

    def test_duplicate_sources_ok(self, line_graph):
        dist = multi_source_distances(line_graph, (2, 2))
        assert dist[2] == 0.0
        assert dist[0] == 2.0


class TestShortestPath:
    def test_returns_path_and_length(self, diamond_graph):
        path, length = shortest_path(diamond_graph, 0, 3)
        assert path == (0, 1, 3)
        assert length == 2.0

    def test_source_equals_target(self, diamond_graph):
        assert shortest_path(diamond_graph, 2, 2) == ((2,), 0.0)

    def test_unreachable_returns_none(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        assert shortest_path(g, 0, 2) is None

    def test_matches_distance_array_on_random_graphs(self):
        rng = random.Random(3)
        for _ in range(20):
            g = random_graph(rng)
            src = rng.randrange(g.n)
            dist = single_source_distances(g, src)
            for target in range(g.n):
                found = shortest_path(g, src, target)
                if dist[target] == INF:
                    assert found is None
                else:
                    path, length = found
                    assert length == pytest.approx(dist[target])
                    assert g.path_weight(path) == pytest.approx(length)
                    assert path[0] == src and path[-1] == target


class TestConstrained:
    def test_blocked_node_forces_detour(self, diamond_graph):
        path, length = constrained_shortest_path(diamond_graph, 0, 3, blocked={1})
        assert path == (0, 2, 3)
        assert length == 3.0

    def test_banned_first_hop(self, diamond_graph):
        path, length = constrained_shortest_path(
            diamond_graph, 0, 3, banned_first_hops={1}
        )
        assert path == (0, 2, 3)

    def test_ban_applies_only_to_first_hop(self):
        # 0 -> 1 -> 2 -> 1? no; build: banning node 1 as first hop still
        # allows reaching it later through another route.
        g = DiGraph.from_edges(
            4, [(0, 1, 1.0), (0, 2, 1.0), (2, 1, 1.0), (1, 3, 1.0)]
        )
        path, length = constrained_shortest_path(g, 0, 3, banned_first_hops={1})
        assert path == (0, 2, 1, 3)
        assert length == 3.0

    def test_initial_distance_added(self, diamond_graph):
        _, length = constrained_shortest_path(
            diamond_graph, 0, 3, initial_distance=10.0
        )
        assert length == 12.0

    def test_fully_blocked_returns_none(self, diamond_graph):
        assert (
            constrained_shortest_path(diamond_graph, 0, 3, blocked={1, 2}) is None
        )

    def test_stats_counters_increment(self, diamond_graph):
        stats = SearchStats()
        constrained_shortest_path(diamond_graph, 0, 3, stats=stats)
        assert stats.nodes_settled >= 2
        assert stats.edges_relaxed >= 2


class TestCutoffBoundary:
    """The cutoff contract is INCLUSIVE: d(v) == cutoff is settled."""

    def test_node_exactly_at_cutoff_is_settled(self, line_graph):
        dist = single_source_distances(line_graph, 0, cutoff=2.0)
        assert dist[2] == 2.0  # exactly at the boundary -> kept
        assert dist[3] == INF  # strictly beyond -> pruned

    def test_inclusive_on_both_kernels(self, line_graph):
        for kernel in KERNELS:
            dist = single_source_distances(line_graph, 0, cutoff=3.0, kernel=kernel)
            assert dist[3] == 3.0, kernel
            assert dist[4] == INF, kernel

    def test_multi_source_cutoff_inclusive(self, line_graph):
        dist = multi_source_distances(line_graph, (0,), cutoff=1.0)
        assert dist[1] == 1.0
        assert dist[2] == INF


class TestBlockedEndpoints:
    def test_blocked_source_raises(self, diamond_graph):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError, match="source"):
            constrained_shortest_path(diamond_graph, 0, 3, blocked={0})

    def test_blocked_target_raises(self, diamond_graph):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError, match="target"):
            constrained_shortest_path(diamond_graph, 0, 3, blocked={3})

    def test_blocked_endpoint_raises_on_flat_kernel_too(self, diamond_graph):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            constrained_shortest_path(diamond_graph, 0, 3, blocked={0}, kernel="flat")
