"""Unit tests for the flat (CSR-backed) kernels.

Every test checks the flat substrate against the dict substrate on the
same inputs — the flat module's contract is "identical answers,
different memory layout".
"""

import random

import pytest

from repro.core.stats import SearchStats
from repro.graph.csr import shared_csr
from repro.graph.digraph import DiGraph
from repro.pathing import flat
from repro.pathing.astar import bounded_astar_path
from repro.pathing.dijkstra import (
    constrained_shortest_path,
    multi_source_distances,
    shortest_path,
    single_source_distances,
)
from repro.pathing.kernels import active_kernel, resolve_kernel, use_kernel
from repro.pathing.spt import build_spt_to_target
from tests.conftest import random_graph

INF = float("inf")


def _graphs(seed: int, count: int):
    rng = random.Random(seed)
    return [random_graph(rng) for _ in range(count)]


class TestKernelSelector:
    def test_default_is_dict(self):
        assert active_kernel() == "dict"
        assert resolve_kernel(None) == "dict"

    def test_use_kernel_scopes_the_ambient_choice(self):
        with use_kernel("flat"):
            assert active_kernel() == "flat"
            assert resolve_kernel(None) == "flat"
        assert active_kernel() == "dict"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("gpu")
        with pytest.raises(ValueError):
            with use_kernel("gpu"):
                pass  # pragma: no cover

    def test_explicit_overrides_ambient(self):
        with use_kernel("flat"):
            assert resolve_kernel("dict") == "dict"


class TestSingleSourceParity:
    def test_exact_equality_on_random_graphs(self):
        for g in _graphs(11, 15):
            for src in range(g.n):
                d_dict = single_source_distances(g, src, kernel="dict")
                d_flat = single_source_distances(g, src, kernel="flat")
                assert list(d_dict) == list(d_flat)

    def test_cutoff_parity_including_boundary(self):
        for g in _graphs(12, 10):
            src = 0
            full = single_source_distances(g, src)
            finite = sorted(x for x in full if x < INF and x > 0)
            if not finite:
                continue
            # Cut exactly at a realised distance: inclusive semantics.
            cutoff = finite[len(finite) // 2]
            d_dict = single_source_distances(g, src, cutoff=cutoff, kernel="dict")
            d_flat = single_source_distances(g, src, cutoff=cutoff, kernel="flat")
            assert list(d_dict) == list(d_flat)

    def test_multi_source_parity(self):
        for g in _graphs(13, 10):
            srcs = (0, g.n - 1)
            d_dict = multi_source_distances(g, srcs, kernel="dict")
            d_flat = multi_source_distances(g, srcs, kernel="flat")
            assert list(d_dict) == list(d_flat)


class TestShortestPathParity:
    def test_lengths_agree_and_paths_valid(self):
        for g in _graphs(21, 15):
            dist = single_source_distances(g, 0)
            for target in range(g.n):
                got = shortest_path(g, 0, target, kernel="flat")
                if dist[target] == INF:
                    assert got is None
                    continue
                path, length = got
                assert length == pytest.approx(dist[target])
                assert g.path_weight(path) == pytest.approx(length)
                assert path[0] == 0 and path[-1] == target


class TestSPTParity:
    def test_distances_agree_and_tree_is_consistent(self):
        for g in _graphs(31, 10):
            target = g.n - 1
            spt_dict = build_spt_to_target(g, target, kernel="dict")
            spt_flat = build_spt_to_target(g, target, kernel="flat")
            assert list(spt_dict.dist) == list(spt_flat.dist)
            for u in range(g.n):
                if spt_flat.dist[u] == INF:
                    continue
                walk = spt_flat.path_from(u)
                assert walk[0] == u and walk[-1] == target
                assert g.path_weight(walk) == pytest.approx(spt_flat.dist[u])


class TestConstrainedParity:
    def test_exact_parity_with_constraints(self):
        rng = random.Random(41)
        for g in _graphs(41, 15):
            src, dst = 0, g.n - 1
            blocked = {rng.randrange(g.n)} - {src, dst}
            banned = {rng.randrange(g.n)}
            d = constrained_shortest_path(
                g, src, dst, blocked=blocked, banned_first_hops=banned,
                initial_distance=1.5, kernel="dict",
            )
            f = constrained_shortest_path(
                g, src, dst, blocked=blocked, banned_first_hops=banned,
                initial_distance=1.5, kernel="flat",
            )
            assert d == f  # identical paths, not just lengths

    def test_bounded_astar_parity_with_prune_info(self):
        for g in _graphs(42, 15):
            src, dst = 0, g.n - 1
            full = single_source_distances(g, src)
            bound = full[dst] if full[dst] < INF else 5.0
            info_d, info_f = {}, {}
            d = bounded_astar_path(
                g, src, dst, lambda u: 0.0, bound=bound, info=info_d,
                kernel="dict",
            )
            f = bounded_astar_path(
                g, src, dst, lambda u: 0.0, bound=bound, info=info_f,
                kernel="flat",
            )
            assert d == f
            assert info_d == info_f

    def test_stats_counters_increment_on_flat(self, diamond_graph):
        stats = SearchStats()
        constrained_shortest_path(diamond_graph, 0, 3, stats=stats, kernel="flat")
        assert stats.nodes_settled >= 2
        assert stats.edges_relaxed >= 2
        assert stats.flat_kernel_calls == 1
        assert stats.dict_kernel_calls == 0


class TestScratchReuse:
    def test_scratch_pool_recycles_buffers(self, diamond_graph):
        csr = shared_csr(diamond_graph)
        s1 = flat.acquire_scratch(csr)
        flat.release_scratch(csr, s1)
        s2 = flat.acquire_scratch(csr)
        assert s2 is s1  # same buffer, no reallocation
        flat.release_scratch(csr, s2)

    def test_generation_stamping_isolates_calls(self, diamond_graph):
        # Two back-to-back searches through the pool must not leak
        # state: distances from the first run are invisible to the
        # second because the generation stamp advanced.
        a = constrained_shortest_path(diamond_graph, 0, 3, kernel="flat")
        b = constrained_shortest_path(diamond_graph, 3, 0, kernel="flat")
        c = constrained_shortest_path(diamond_graph, 0, 3, kernel="flat")
        assert a == c
        assert b is None  # 3 has no outgoing route back to 0

    def test_nested_searches_get_distinct_scratch(self, diamond_graph):
        csr = shared_csr(diamond_graph)
        s1 = flat.acquire_scratch(csr)
        s2 = flat.acquire_scratch(csr)
        assert s1 is not s2
        flat.release_scratch(csr, s2)
        flat.release_scratch(csr, s1)


class TestPurePythonFallback:
    """The scipy-free code paths must agree with the dict kernel too."""

    def test_multi_source_python_fallback(self):
        for g in _graphs(51, 5):
            srcs = (0, g.n // 2)
            expected = multi_source_distances(g, srcs, kernel="dict")
            got = flat._py_multi_source(shared_csr(g), srcs, INF)
            assert list(got) == list(expected)
