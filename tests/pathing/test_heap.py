"""Unit tests for the priority queues."""

import random

import pytest

from repro.pathing.heap import AddressableHeap, LazyHeap


class TestLazyHeap:
    def test_push_pop_order(self):
        h = LazyHeap()
        h.push(3.0, "c")
        h.push(1.0, "a")
        h.push(2.0, "b")
        assert h.pop() == (1.0, "a")
        assert h.pop() == (2.0, "b")
        assert h.pop() == (3.0, "c")

    def test_pop_unique_skips_stale_duplicates(self):
        h = LazyHeap()
        h.push(5.0, "x")
        h.push(2.0, "x")  # decreased key
        h.push(1.0, "y")
        assert h.pop_unique() == (1.0, "y")
        assert h.pop_unique() == (2.0, "x")
        assert h.pop_unique() is None  # the stale (5.0, "x") is skipped

    def test_peek(self):
        h = LazyHeap()
        assert h.peek() is None
        h.push(4.0, "z")
        assert h.peek() == (4.0, "z")
        assert len(h) == 1

    def test_bool_and_len(self):
        h = LazyHeap()
        assert not h
        h.push(1.0, 1)
        assert h
        assert len(h) == 1


class TestAddressableHeap:
    def test_push_pop_order(self):
        h = AddressableHeap()
        for key, priority in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            h.push(key, priority)
        assert h.pop() == ("b", 1.0)
        assert h.pop() == ("c", 2.0)
        assert h.pop() == ("a", 3.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().peek()

    def test_push_updates_priority_down(self):
        h = AddressableHeap()
        h.push("a", 5.0)
        h.push("b", 3.0)
        h.push("a", 1.0)
        assert len(h) == 2
        assert h.pop() == ("a", 1.0)

    def test_push_updates_priority_up(self):
        h = AddressableHeap()
        h.push("a", 1.0)
        h.push("b", 3.0)
        h.push("a", 9.0)
        assert h.pop() == ("b", 3.0)
        assert h.pop() == ("a", 9.0)

    def test_decrease_key(self):
        h = AddressableHeap()
        h.push("a", 5.0)
        assert h.decrease_key("a", 2.0)
        assert not h.decrease_key("a", 3.0)  # not lower -> no-op
        assert h.priority_of("a") == 2.0

    def test_decrease_key_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableHeap().decrease_key("ghost", 1.0)

    def test_remove(self):
        h = AddressableHeap()
        h.push("a", 1.0)
        h.push("b", 2.0)
        h.push("c", 3.0)
        assert h.remove("b") == 2.0
        assert "b" not in h
        assert h.pop() == ("a", 1.0)
        assert h.pop() == ("c", 3.0)

    def test_contains(self):
        h = AddressableHeap()
        h.push(42, 1.0)
        assert 42 in h
        assert 7 not in h

    def test_randomized_against_model(self):
        rng = random.Random(0)
        h = AddressableHeap()
        model: dict[int, float] = {}
        for step in range(2000):
            op = rng.random()
            if op < 0.5 or not model:
                key = rng.randrange(50)
                priority = rng.uniform(0, 100)
                h.push(key, priority)
                model[key] = priority
            elif op < 0.75:
                key, priority = h.pop()
                expected_key = min(model, key=lambda k: (model[k], 0))
                assert priority == min(model.values())
                assert model[key] == priority
                del model[key]
            else:
                key = rng.choice(list(model))
                h.remove(key)
                del model[key]
            assert len(h) == len(model)
            assert h.check_invariant()
        while model:
            key, priority = h.pop()
            assert priority == min(model.values())
            del model[key]
