"""Unit tests for the compiled ``native`` kernel tier.

The container running CI may or may not have numba.  Every parity
test therefore runs twice: once in whatever mode the environment
provides (JIT, or the flat-delegating fallback), and once with the
array engine forced via ``_FORCE_ARRAYS`` — which runs the kernel
functions *interpreted*, so the exact code numba would compile is
exercised even where numba is absent.
"""

import random

import pytest

from repro.core.flat_engine import FlatIncrementalSPT
from repro.core.stats import SearchStats
from repro.graph.csr import shared_csr
from repro.pathing import flat, native
from tests.conftest import random_graph

INF = float("inf")


@pytest.fixture(params=[False, True], ids=["ambient", "forced-arrays"])
def engine_mode(request, monkeypatch):
    """Run the test body under both native operating modes."""
    if request.param:
        monkeypatch.setattr(native, "_FORCE_ARRAYS", True)
    return request.param


def _graphs(seed: int, count: int, **kw):
    rng = random.Random(seed)
    return [random_graph(rng, **kw) for _ in range(count)]


class TestEngineSelection:
    def test_use_array_engine_follows_numba_or_force(self, monkeypatch):
        monkeypatch.setattr(native, "_FORCE_ARRAYS", False)
        assert native.use_array_engine() == native.HAVE_NUMBA
        monkeypatch.setattr(native, "_FORCE_ARRAYS", True)
        assert native.use_array_engine() is True

    def test_warmup_is_noop_without_numba(self, monkeypatch):
        if native.HAVE_NUMBA:
            pytest.skip("numba present; warmup compiles for real")
        monkeypatch.setattr(native, "_WARMED", False)
        assert native.warmup_jit() is False

    def test_warmup_runs_once(self, monkeypatch):
        if not native.HAVE_NUMBA:
            pytest.skip("warmup only compiles under numba")
        monkeypatch.setattr(native, "_WARMED", False)
        assert native.warmup_jit() is True
        assert native.warmup_jit() is False  # already warm


class TestDistancesParity:
    def test_multi_source_matches_flat(self, engine_mode):
        for g in _graphs(101, 8):
            csr = shared_csr(g)
            srcs = [0, g.n - 1]
            expect = flat.flat_multi_source_distances(csr, srcs)
            got = native.native_multi_source_distances(csr, srcs)
            assert list(got) == list(expect)

    def test_cutoff_is_inclusive(self, engine_mode):
        for g in _graphs(102, 6):
            csr = shared_csr(g)
            expect = flat.flat_multi_source_distances(csr, [0], cutoff=4.0)
            got = native.native_multi_source_distances(csr, [0], cutoff=4.0)
            assert list(got) == list(expect)

    def test_spt_arrays_match_flat(self, engine_mode):
        # Equal-distance ties may legitimately differ between
        # substrates, so compare distances only (as the scipy tests do).
        for g in _graphs(103, 6):
            csr = shared_csr(g)
            ed, _ = flat.flat_spt_arrays(csr, g.n - 1)
            gd, _ = native.native_spt_arrays(csr, g.n - 1)
            assert gd == ed


class TestBoundedAStarParity:
    def test_unconstrained_matches_flat(self, engine_mode):
        for g in _graphs(104, 10):
            csr = shared_csr(g)
            expect = flat.flat_bounded_astar_path(csr, 0, g.n - 1, None, INF)
            got = native.native_bounded_astar_path(csr, 0, g.n - 1, None, INF)
            assert got == expect

    def test_blocked_banned_and_bound(self, engine_mode):
        rng = random.Random(105)
        for g in _graphs(105, 10):
            csr = shared_csr(g)
            blocked = [rng.randrange(g.n)]
            banned = [rng.randrange(g.n)]
            for bound in (3.0, 7.0, INF):
                fi, ni = {}, {}
                expect = flat.flat_bounded_astar_path(
                    csr, 0, g.n - 1, None, bound,
                    blocked=blocked, banned_first_hops=banned,
                    initial_distance=1.5, info=fi, collect_dists=True,
                )
                got = native.native_bounded_astar_path(
                    csr, 0, g.n - 1, None, bound,
                    blocked=blocked, banned_first_hops=banned,
                    initial_distance=1.5, info=ni, collect_dists=True,
                )
                assert got == expect
                assert ni["pruned"] == fi["pruned"]
                assert ni.get("tail_dists") == fi.get("tail_dists")

    def test_stats_counters_match_flat(self, engine_mode):
        for g in _graphs(106, 6):
            csr = shared_csr(g)
            sf, sn = SearchStats(), SearchStats()
            flat.flat_bounded_astar_path(csr, 0, g.n - 1, None, INF, stats=sf)
            native.native_bounded_astar_path(csr, 0, g.n - 1, None, INF, stats=sn)
            assert sn.nodes_settled == sf.nodes_settled
            assert sn.edges_relaxed == sf.edges_relaxed

    def test_callable_heuristic_delegates_to_flat(self, engine_mode):
        g = _graphs(107, 1)[0]
        csr = shared_csr(g)
        h = lambda v: 0.0  # noqa: E731 — callable cannot cross the JIT boundary
        expect = flat.flat_bounded_astar_path(csr, 0, g.n - 1, h, INF)
        got = native.native_bounded_astar_path(csr, 0, g.n - 1, h, INF)
        assert got == expect


class TestIncrementalTreeParity:
    def _trees(self, g):
        csr = shared_csr(g)
        dests = frozenset({g.n - 1, g.n // 2})
        f = FlatIncrementalSPT(csr, 0, None, dests)
        nt = native.NativeIncrementalSPT(csr, 0, None, dests)
        return csr, dests, f, nt

    def test_build_initial_and_grow(self, engine_mode):
        for g in _graphs(108, 8):
            _, _, f, nt = self._trees(g)
            target = g.n - 1
            a = f.build_initial(target)
            b = nt.build_initial(target)
            assert a == b
            for tau in (2.0, 5.0, INF):
                f.grow(tau)
                nt.grow(tau)
                assert len(f) == len(nt)
                for v in range(g.n):
                    assert (v in f) == (v in nt)
                    assert f.distance(v) == nt.distance(v)
            assert f.num_settled_destinations == nt.num_settled_destinations
            fd, fdist = f.dest_arrays()
            nd, ndist = nt.dest_arrays()
            assert sorted(fd.tolist()) == sorted(nd.tolist())
            assert sorted(fdist.tolist()) == sorted(ndist.tolist())
            f.close()
            nt.close()


class TestBatchCompSP:
    class _Sub:
        """Minimal stand-in for a Subspace: prefix + banned + weight."""

        def __init__(self, prefix, banned=frozenset(), weight=0.0):
            self.prefix = tuple(prefix)
            self.banned = banned
            self.prefix_weight = weight

    def test_stops_after_first_hit(self, engine_mode):
        g = _graphs(109, 1, min_nodes=8)[0]
        csr = shared_csr(g)
        reachable = flat.flat_multi_source_distances(csr, [0])
        goal = max(range(g.n), key=lambda v: (reachable[v] < INF, v))
        # Three identical requests with an infinite budget: the first
        # must hit (goal reachable), so exactly one outcome comes back.
        pairs = [(self._Sub((0,)), INF)] * 3
        outcomes = native.native_batch_compsp(csr, goal, pairs)
        assert len(outcomes) == 1
        assert outcomes[0].path is not None

    def test_runs_through_pruned_misses(self, engine_mode):
        g = _graphs(110, 1, min_nodes=8)[0]
        csr = shared_csr(g)
        dist = flat.flat_multi_source_distances(csr, [0])
        goal = max(range(g.n), key=lambda v: (dist[v] < INF, dist[v]))
        assert dist[goal] < INF
        tiny = dist[goal] / 4 if dist[goal] > 0 else 0.25
        # Too-small budgets are pruned misses → speculation continues;
        # the final infinite budget hits and terminates the batch.
        pairs = [
            (self._Sub((0,)), tiny),
            (self._Sub((0,)), tiny),
            (self._Sub((0,)), INF),
        ]
        stats = SearchStats()
        outcomes = native.native_batch_compsp(csr, goal, pairs, stats=stats)
        assert len(outcomes) == 3
        assert outcomes[0].path is None and outcomes[0].pruned
        assert outcomes[2].path is not None
        assert stats.native_kernel_calls == 3

    def test_clocked_outcomes_carry_timestamps(self, engine_mode):
        g = _graphs(111, 1)[0]
        csr = shared_csr(g)
        taus = []
        pairs = [(self._Sub((0,)), INF)]
        outcomes = native.native_batch_compsp(
            csr, 0 if g.n == 1 else g.n - 1, pairs, grow=taus.append,
            clocked=True,
        )
        assert taus == [INF]
        out = outcomes[0]
        assert out.t0 is not None and out.t1 is not None and out.t1 >= out.t0
        assert out.g0 is not None and out.g1 is not None


class TestMegaKernelBatch:
    def test_tree_batch_matches_generic_loop(self, engine_mode):
        """The single-call ``_batch_test_kernel`` path must agree with
        the per-request python loop on identical request schedules."""
        if not native.use_array_engine():
            pytest.skip("mega kernel needs the array engine")
        for g in _graphs(112, 6, min_nodes=8, max_nodes=14):
            csr = shared_csr(g)
            dests = frozenset({g.n - 1})
            t1 = native.NativeIncrementalSPT(csr, 0, None, dests)
            t2 = native.NativeIncrementalSPT(csr, 0, None, dests)
            if t1.build_initial(g.n - 1) is None:
                t1.close()
                t2.close()
                continue
            t2.build_initial(g.n - 1)
            rcsr = csr.reverse()
            sub = TestBatchCompSP._Sub((g.n - 1,))
            pairs = [(sub, 2.0), (sub, 4.0), (sub, INF)]
            mega = t1.batch_test(rcsr, 0, pairs, SearchStats())
            generic = native.native_batch_compsp(
                rcsr, 0, pairs, h=t2.h, stats=SearchStats(), grow=t2.grow
            )
            assert len(mega) == len(generic)
            for a, b in zip(mega, generic):
                assert a.path == b.path
                assert a.length == b.length
                assert a.pruned == b.pruned
                assert a.tail_dists == b.tail_dists
            t1.close()
            t2.close()


class TestSolverWarmup:
    def test_native_solver_warms_at_init_not_per_query(self, monkeypatch):
        """Satellite: JIT compilation is charged to warm-up, never to a
        query phase.  The solver must call ``warmup_jit`` exactly once,
        at construction."""
        from repro.core.kpj import KPJSolver
        from repro.graph.categories import CategoryIndex
        from repro.obs.metrics import MetricsRegistry

        calls = []
        monkeypatch.setattr(native, "warmup_jit", lambda: calls.append(1))
        g = _graphs(113, 1, min_nodes=6)[0]
        cats = CategoryIndex({"T": (g.n - 1,)})
        reg = MetricsRegistry()
        solver = KPJSolver(g, cats, landmarks=2, kernel="native", metrics=reg)
        assert calls == [1]
        assert "warmup" in reg.phases
        solver.top_k(0, category="T", k=2)
        solver.top_k(0, category="T", k=2)
        assert calls == [1]  # queries never re-warm

    def test_dict_solver_never_warms(self, monkeypatch):
        from repro.core.kpj import KPJSolver
        from repro.graph.categories import CategoryIndex

        calls = []
        monkeypatch.setattr(native, "warmup_jit", lambda: calls.append(1))
        g = _graphs(114, 1, min_nodes=6)[0]
        KPJSolver(g, CategoryIndex({"T": (g.n - 1,)}), landmarks=2)
        assert calls == []

    def test_pool_warm_cache_warms_native_solver(self, monkeypatch):
        from repro.core.kpj import KPJSolver
        from repro.graph.categories import CategoryIndex
        from repro.server.pool import BatchQuery, _warm_cache

        calls = []
        g = _graphs(115, 1, min_nodes=6)[0]
        solver = KPJSolver(
            g, CategoryIndex({"T": (g.n - 1,)}), landmarks=2, kernel="native"
        )
        monkeypatch.setattr(native, "warmup_jit", lambda: calls.append(1))
        _warm_cache(solver, [BatchQuery(source=0, category="T", k=2)])
        assert calls == [1]


class TestDispatchCounters:
    def test_native_dispatch_counter_surfaces_in_metrics(self):
        from repro.core.kpj import KPJSolver
        from repro.graph.categories import CategoryIndex
        from repro.obs.metrics import MetricsRegistry

        g = _graphs(116, 1, min_nodes=8)[0]
        reg = MetricsRegistry()
        solver = KPJSolver(
            g, CategoryIndex({"T": (g.n - 1, g.n - 2)}), landmarks=2,
            kernel="native", metrics=reg,
        )
        solver.top_k(0, category="T", k=3, algorithm="iter-bound-spti")
        assert reg.counters.get("kernel_dispatch_native", 0) > 0
        assert "kernel_dispatch_dict" not in reg.counters
