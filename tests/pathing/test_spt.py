"""Unit tests for full and partial shortest-path trees."""

import random

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.pathing.dijkstra import single_source_distances
from repro.pathing.spt import build_partial_spt, build_spt_to_target
from tests.conftest import random_graph

INF = float("inf")


def zero(_):
    return 0.0


class TestFullSPT:
    def test_distances_match_reverse_dijkstra(self):
        rng = random.Random(21)
        for _ in range(10):
            g = random_graph(rng)
            target = rng.randrange(g.n)
            spt = build_spt_to_target(g, target)
            expected = single_source_distances(g.reversed_copy(), target)
            for v in range(g.n):
                assert spt.distance(v) == pytest.approx(expected[v])

    def test_tree_paths_are_valid_and_optimal(self):
        rng = random.Random(22)
        g = random_graph(rng, min_nodes=8, max_nodes=12)
        target = 0
        spt = build_spt_to_target(g, target)
        for v in range(g.n):
            path = spt.path_from(v)
            if spt.distance(v) == INF:
                assert path is None
                continue
            assert path[0] == v
            assert path[-1] == target
            assert g.path_weight(path) == pytest.approx(spt.distance(v))

    def test_contains(self, diamond_graph):
        spt = build_spt_to_target(diamond_graph, 3)
        assert 0 in spt
        assert 3 in spt

    def test_unreachable_node(self):
        g = DiGraph.from_edges(3, [(0, 1, 1.0)])
        spt = build_spt_to_target(g, 1)
        assert spt.distance(2) == INF
        assert 2 not in spt
        assert spt.path_from(2) is None

    def test_target_path_is_trivial(self, diamond_graph):
        spt = build_spt_to_target(diamond_graph, 3)
        assert spt.path_from(3) == (3,)
        assert spt.distance(3) == 0.0


class TestCanonicalTree:
    """The SPT *tree* — not just the distances — is kernel-independent."""

    def _tie_graph(self, seed: int) -> DiGraph:
        # Small weight range with zeros allowed: maximises equal-length
        # ties, the regime where relaxation order used to leak into the
        # successor pointers.
        rng = random.Random(seed)
        n = rng.randint(6, 12)
        g = DiGraph(n)
        seen: set[tuple[int, int]] = set()
        for _ in range(rng.randint(2 * n, 4 * n)):
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or (u, v) in seen:
                continue
            seen.add((u, v))
            g.add_edge(u, v, float(rng.randint(0, 2)))
        return g.freeze()

    def test_identical_across_kernels_under_ties(self):
        for seed in range(51, 71):
            g = self._tie_graph(seed)
            target = g.n - 1
            trees = {
                kernel: build_spt_to_target(g, target, kernel=kernel)
                for kernel in ("dict", "flat", "native")
            }
            dict_tree = trees["dict"]
            for kernel in ("flat", "native"):
                assert list(trees[kernel].dist) == list(dict_tree.dist), (seed, kernel)
                assert trees[kernel].next_hop == dict_tree.next_hop, (seed, kernel)

    def test_hops_are_tight(self):
        g = self._tie_graph(99)
        target = g.n - 1
        spt = build_spt_to_target(g, target)
        for v in range(g.n):
            if v == target or spt.dist[v] == INF:
                assert spt.next_hop[v] == -1 or v != target
                continue
            u = spt.next_hop[v]
            assert u >= 0
            assert spt.dist[v] == g.edge_weight(v, u) + spt.dist[u]

    def test_zero_weight_cycle_paths_terminate(self):
        # 0 <-> 1 at weight zero, both one zero hop from the target:
        # a naive per-node argmin over tight edges could point 0 and 1
        # at each other and loop forever in path_from.
        g = DiGraph.from_edges(
            3,
            [
                (0, 1, 0.0),
                (1, 0, 0.0),
                (0, 2, 0.0),
                (1, 2, 0.0),
            ],
        )
        for kernel in ("dict", "flat", "native"):
            spt = build_spt_to_target(g, 2, kernel=kernel)
            for v in range(3):
                path = spt.path_from(v)
                assert path is not None and path[-1] == 2
                assert len(path) == len(set(path))


class TestPartialSPT:
    def make_query(self, seed=31):
        rng = random.Random(seed)
        g = random_graph(rng, min_nodes=10, max_nodes=16, bidirectional=True)
        src = rng.randrange(g.n)
        dests = rng.sample(range(g.n), 3)
        return g, build_query_graph(g, (src,), dests)

    def test_settled_distances_are_exact(self):
        g, qg = self.make_query()
        tree = build_partial_spt(qg.graph, qg.source, (qg.target,), zero)
        exact = single_source_distances(qg.reversed_graph(), qg.target)
        for v, d in tree.dist_to_targets.items():
            assert d == pytest.approx(exact[v])

    def test_source_path_is_shortest(self):
        g, qg = self.make_query(seed=32)
        tree = build_partial_spt(qg.graph, qg.source, (qg.target,), zero)
        from repro.pathing.dijkstra import shortest_path

        exact = shortest_path(qg.graph, qg.source, qg.target)
        if exact is None:
            assert tree.source_path is None
        else:
            assert tree.source_path is not None
            assert qg.graph.path_weight(tree.source_path) == pytest.approx(exact[1])
            assert tree.source_path[0] == qg.source
            assert tree.source_path[-1] == qg.target

    def test_partial_tree_stops_at_source(self):
        # On a long line with the destination at one end, the backward
        # A* stops once the source is settled: nodes far beyond the
        # source stay outside the tree.
        g = DiGraph.from_edges(
            20, [(i, i + 1, 1.0) for i in range(19)], bidirectional=True
        )
        qg = build_query_graph(g, (15,), (19,))
        tree = build_partial_spt(qg.graph, qg.source, (qg.target,), zero)
        assert 15 in tree
        assert 0 not in tree  # far side of the line was never explored
        assert len(tree) < 20

    def test_len_counts_settled(self):
        g, qg = self.make_query(seed=33)
        tree = build_partial_spt(qg.graph, qg.source, (qg.target,), zero)
        assert len(tree) == len(tree.dist_to_targets)

    def test_unreachable_source(self):
        g = DiGraph.from_edges(3, [(1, 2, 1.0)])  # 0 isolated
        qg = build_query_graph(g, (0,), (2,))
        tree = build_partial_spt(qg.graph, qg.source, (qg.target,), zero)
        assert tree.source_path is None
