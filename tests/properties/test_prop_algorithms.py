"""Property-based cross-validation: every algorithm equals brute force.

The central correctness property of the whole package (DESIGN.md
invariant 1): on arbitrary graphs and queries, each of the seven
registered algorithms returns exactly the brute-force top-k lengths,
and the returned paths satisfy the KPJ contract.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_topk
from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph

# A compact strategy for small weighted digraphs with a query.


@st.composite
def graph_and_query(draw):
    n = draw(st.integers(4, 9))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    weights = draw(
        st.lists(
            st.integers(0, 9), min_size=len(edges), max_size=len(edges)
        )
    )
    g = DiGraph(n)
    for (u, v), w in zip(edges, weights):
        g.add_edge(u, v, float(w))
    g.freeze()
    source = draw(st.integers(0, n - 1))
    dest_count = draw(st.integers(1, 3))
    destinations = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=dest_count,
            max_size=dest_count,
            unique=True,
        )
    )
    k = draw(st.integers(1, 5))
    return g, source, tuple(destinations), k


@settings(max_examples=40, deadline=None)
@given(case=graph_and_query())
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algorithm_matches_brute_force(algorithm, case):
    g, source, destinations, k = case
    expected = [p.length for p in brute_force_topk(g, source, destinations, k)]
    solver = KPJSolver(
        g, CategoryIndex({"T": destinations}), landmarks=min(3, g.n)
    )
    result = solver.top_k(source, category="T", k=k, algorithm=algorithm)
    got = list(result.lengths)
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=40, deadline=None)
@given(case=graph_and_query())
def test_result_contract(case):
    """Paths are simple, start at the source, end in V_T, sorted."""
    g, source, destinations, k = case
    solver = KPJSolver(g, CategoryIndex({"T": destinations}), landmarks=None)
    result = solver.top_k(source, category="T", k=k)
    dest_set = set(destinations)
    previous = -math.inf
    for path in result.paths:
        assert path.nodes[0] == source
        assert path.nodes[-1] in dest_set
        assert g.is_simple_path(path.nodes)
        assert g.path_weight(path.nodes) == pytest.approx(path.length)
        assert path.length >= previous - 1e-12
        previous = path.length
    # Paths are pairwise distinct.
    assert len({p.nodes for p in result.paths}) == len(result.paths)


@settings(max_examples=25, deadline=None)
@given(case=graph_and_query(), alpha=st.floats(1.01, 5.0))
def test_alpha_never_changes_lengths(case, alpha):
    """The tau growth factor is a performance knob, never a semantics one."""
    g, source, destinations, k = case
    solver = KPJSolver(g, CategoryIndex({"T": destinations}), landmarks=2)
    base = solver.top_k(source, category="T", k=k, algorithm="iter-bound-spti")
    varied = solver.top_k(
        source, category="T", k=k, algorithm="iter-bound-spti", alpha=alpha
    )
    assert [round(x, 9) for x in varied.lengths] == [
        round(x, 9) for x in base.lengths
    ]
