"""Property-based tests of the synthetic road-network generators."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import grid_road_network, radial_road_network
from repro.pathing.dijkstra import single_source_distances

INF = float("inf")


@settings(max_examples=15, deadline=None)
@given(
    rows=st.integers(3, 12),
    cols=st.integers(3, 12),
    seed=st.integers(0, 1000),
)
def test_grid_networks_well_formed(rows, cols, seed):
    g, coords = grid_road_network(rows, cols, seed=seed)
    # Connected (largest-component extraction guarantees it).
    dist = single_source_distances(g, 0)
    assert all(d < INF for d in dist)
    # Bidirectional with matching weights.
    for u, v, w in g.edges():
        assert g.edge_weight(v, u) == w
    # Weights are the Euclidean lengths of their segments.
    for u, v, w in g.edges():
        dx = coords[u, 0] - coords[v, 0]
        dy = coords[u, 1] - coords[v, 1]
        assert math.isclose(w, math.hypot(dx, dy), rel_tol=1e-9)
    # Road-like degrees: no hubs.
    assert max(g.out_degree(u) for u in range(g.n)) <= 8


@settings(max_examples=15, deadline=None)
@given(
    rings=st.integers(1, 6),
    spokes=st.integers(3, 15),
    seed=st.integers(0, 1000),
)
def test_radial_networks_well_formed(rings, spokes, seed):
    g, coords = radial_road_network(rings, spokes, seed=seed)
    dist = single_source_distances(g, 0)
    assert all(d < INF for d in dist)
    assert len(coords) == g.n
    for u, v, w in g.edges():
        assert g.edge_weight(v, u) == w
        assert w > 0.0


@settings(max_examples=10, deadline=None)
@given(rows=st.integers(3, 10), cols=st.integers(3, 10), seed=st.integers(0, 100))
def test_grid_generation_deterministic(rows, cols, seed):
    a, ca = grid_road_network(rows, cols, seed=seed)
    b, cb = grid_road_network(rows, cols, seed=seed)
    assert sorted(a.edges()) == sorted(b.edges())
    assert ca.tolist() == cb.tolist()
