"""Property-based tests for GKPJ (set-valued sources)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import brute_force_topk
from repro.core.kpj import KPJSolver
from repro.graph.digraph import DiGraph


@st.composite
def gkpj_case(draw):
    n = draw(st.integers(4, 9))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    g = DiGraph(n)
    for u, v in edges:
        g.add_edge(u, v, float(draw(st.integers(0, 9))))
    g.freeze()
    sources = tuple(
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3, unique=True))
    )
    destinations = tuple(
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=3, unique=True))
    )
    k = draw(st.integers(1, 5))
    return g, sources, destinations, k


def oracle(graph, sources, destinations, k):
    pool = []
    for source in set(sources):
        pool.extend(brute_force_topk(graph, source, destinations, k))
    pool.sort()
    return [p.length for p in pool[:k]]


@settings(max_examples=40, deadline=None)
@given(case=gkpj_case())
def test_gkpj_matches_oracle(case):
    g, sources, destinations, k = case
    solver = KPJSolver(g, landmarks=2)
    result = solver.join(sources=sources, destinations=destinations, k=k)
    expected = oracle(g, sources, destinations, k)
    got = list(result.lengths)
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(case=gkpj_case())
def test_gkpj_contract(case):
    """Endpoints in the right sets, simple, sorted, no virtual ids."""
    g, sources, destinations, k = case
    solver = KPJSolver(g, landmarks=None)
    result = solver.join(sources=sources, destinations=destinations, k=k)
    source_set, dest_set = set(sources), set(destinations)
    previous = -math.inf
    for path in result.paths:
        assert path.nodes[0] in source_set
        assert path.nodes[-1] in dest_set
        assert max(path.nodes) < g.n
        assert g.is_simple_path(path.nodes)
        assert path.length >= previous - 1e-12
        previous = path.length


@settings(max_examples=25, deadline=None)
@given(case=gkpj_case())
def test_gkpj_never_beats_best_single_source_by_definition(case):
    """The GKPJ top-1 equals the minimum over per-source top-1s."""
    g, sources, destinations, k = case
    solver = KPJSolver(g, landmarks=2)
    joint = solver.join(sources=sources, destinations=destinations, k=1)
    singles = []
    for source in sources:
        r = solver.top_k(source, destinations=destinations, k=1)
        if r.paths:
            singles.append(r.paths[0].length)
    if not singles:
        assert not joint.paths
    else:
        assert joint.paths[0].length == min(singles)
