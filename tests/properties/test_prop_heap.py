"""Property-based model test of the addressable heap."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.pathing.heap import AddressableHeap


class HeapMachine(RuleBasedStateMachine):
    """The heap must always agree with a dict model."""

    def __init__(self):
        super().__init__()
        self.heap: AddressableHeap[int] = AddressableHeap()
        self.model: dict[int, float] = {}

    @rule(key=st.integers(0, 30), priority=st.floats(0, 100))
    def push(self, key, priority):
        self.heap.push(key, priority)
        self.model[key] = priority

    @precondition(lambda self: self.model)
    @rule()
    def pop_min(self):
        key, priority = self.heap.pop()
        assert priority == min(self.model.values())
        assert self.model[key] == priority
        del self.model[key]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove_some(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        priority = self.heap.remove(key)
        assert priority == self.model.pop(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), delta=st.floats(0.001, 50))
    def decrease(self, data, delta):
        key = data.draw(st.sampled_from(sorted(self.model)))
        new_priority = self.model[key] - delta
        changed = self.heap.decrease_key(key, new_priority)
        assert changed
        self.model[key] = new_priority

    @invariant()
    def sizes_agree(self):
        assert len(self.heap) == len(self.model)

    @invariant()
    def structure_valid(self):
        assert self.heap.check_invariant()

    @invariant()
    def peek_is_min(self):
        if self.model:
            _, priority = self.heap.peek()
            assert priority == min(self.model.values())


TestHeapMachine = HeapMachine.TestCase
TestHeapMachine.settings = settings(max_examples=60, stateful_step_count=40)


@given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 1000)), min_size=1))
def test_heapsort_via_addressable_heap(pairs):
    """Pushing then draining yields priorities in sorted order."""
    heap: AddressableHeap[int] = AddressableHeap()
    model = {}
    for key, priority in pairs:
        heap.push(key, priority)
        model[key] = priority
    drained = []
    while heap:
        _, priority = heap.pop()
        drained.append(priority)
    assert drained == sorted(model.values())
