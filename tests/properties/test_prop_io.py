"""Property-based round-trip tests for the IO layer."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    load_edge_list,
    load_npz,
    load_poi_file,
    save_npz,
    write_edge_list,
)


@st.composite
def arbitrary_graph(draw):
    n = draw(st.integers(2, 10))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=2 * n, unique=True)
    )
    g = DiGraph(n)
    for u, v in chosen:
        # Weights that survive "%g" text formatting exactly.
        g.add_edge(u, v, float(draw(st.integers(0, 10_000))) / 4.0)
    return g.freeze()


@settings(max_examples=40, deadline=None)
@given(g=arbitrary_graph())
def test_edge_list_round_trip(g):
    buf = io.StringIO()
    write_edge_list(g, buf)
    loaded = load_edge_list(io.StringIO(buf.getvalue()))
    assert sorted(loaded.edges()) == sorted(g.edges())


@settings(max_examples=25, deadline=None)
@given(g=arbitrary_graph(), data=st.data())
def test_npz_round_trip(g, data, tmp_path_factory):
    names = data.draw(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=65, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    members = {
        name: data.draw(
            st.lists(st.integers(0, g.n - 1), min_size=1, max_size=4, unique=True)
        )
        for name in names
    }
    categories = CategoryIndex(members)
    path = tmp_path_factory.mktemp("npz") / "snapshot.npz"
    save_npz(path, g, categories=categories)
    loaded_graph, loaded_categories, _ = load_npz(path)
    assert sorted(loaded_graph.edges()) == sorted(g.edges())
    assert loaded_categories is not None
    for name in names:
        assert loaded_categories.nodes_of(name) == categories.nodes_of(name)


@settings(max_examples=30, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(0, 99),
            st.sampled_from(["Hotel", "Fuel", "Gas Station", "Park"]),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_poi_file_round_trip(entries):
    text = "".join(f"{node} {category}\n" for node, category in entries)
    index = load_poi_file(io.StringIO(text))
    for node, category in entries:
        assert node in index.node_set(category)
