"""Property-based parity: kernels and caching never change answers.

Two invariants ride on the performance stack:

* **flat vs dict** — every registry algorithm returns the same top-k
  path-length multiset whichever substrate it runs on;
* **cached vs uncached** — a solver whose prepared-category cache is
  warm (or disabled) returns exactly what a cold solver returns.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kpj import ALGORITHMS, KPJSolver
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.pathing.kernels import KERNELS


@st.composite
def graph_and_query(draw):
    """A small weighted digraph plus a KPJ query over it."""
    n = draw(st.integers(4, 9))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    weights = draw(
        st.lists(st.integers(0, 9), min_size=len(edges), max_size=len(edges))
    )
    g = DiGraph(n)
    for (u, v), w in zip(edges, weights):
        g.add_edge(u, v, float(w))
    g.freeze()
    source = draw(st.integers(0, n - 1))
    dest_count = draw(st.integers(1, 3))
    destinations = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=dest_count,
            max_size=dest_count,
            unique=True,
        )
    )
    k = draw(st.integers(1, 5))
    return g, source, tuple(destinations), k


def _length_multiset(result):
    return sorted(round(x, 9) for x in result.lengths)


@settings(max_examples=25, deadline=None)
@given(case=graph_and_query())
def test_flat_matches_dict_on_every_algorithm(case):
    g, source, destinations, k = case
    cats = CategoryIndex({"T": destinations})
    solver_dict = KPJSolver(g, cats, landmarks=min(3, g.n), kernel="dict")
    solver_flat = KPJSolver(g, cats, landmarks=min(3, g.n), kernel="flat")
    for algorithm in sorted(ALGORITHMS):
        a = solver_dict.top_k(source, category="T", k=k, algorithm=algorithm)
        b = solver_flat.top_k(source, category="T", k=k, algorithm=algorithm)
        assert _length_multiset(a) == _length_multiset(b), algorithm


@settings(max_examples=25, deadline=None)
@given(case=graph_and_query())
def test_flat_returns_identical_paths_per_algorithm(case):
    """The strong form of the parity invariant: for every registry
    algorithm the flat substrate returns the *exact same paths* — node
    sequences and bit-for-bit lengths — as the dict substrate, not just
    the same length multiset.

    The one exception is ``da-spt``: its deviation order follows the
    SPT parent structure, and the scipy-built SPT breaks equal-distance
    ties differently from the dict build, so only the length multiset
    is specified.
    """
    g, source, destinations, k = case
    cats = CategoryIndex({"T": destinations})
    solver_dict = KPJSolver(g, cats, landmarks=min(3, g.n), kernel="dict")
    solver_flat = KPJSolver(g, cats, landmarks=min(3, g.n), kernel="flat")
    for algorithm in sorted(ALGORITHMS):
        a = solver_dict.top_k(source, category="T", k=k, algorithm=algorithm)
        b = solver_flat.top_k(source, category="T", k=k, algorithm=algorithm)
        if algorithm == "da-spt":
            assert _length_multiset(a) == _length_multiset(b), algorithm
            continue
        assert [(p.length, p.nodes) for p in a.paths] == [
            (p.length, p.nodes) for p in b.paths
        ], algorithm


@settings(max_examples=25, deadline=None)
@given(case=graph_and_query())
def test_native_returns_identical_paths_per_algorithm(case):
    """``native`` obeys the same strong parity contract as ``flat``.

    Runs twice: once in whatever mode the environment provides (numba
    JIT, or flat-delegating fallback without it) and once with the
    array engine forced (``_FORCE_ARRAYS``), so the compiled kernels'
    code paths are exercised — interpreted — even where numba is
    absent.  ``da-spt`` is length-multiset-only, as for ``flat``.
    """
    from repro.pathing import native

    g, source, destinations, k = case
    cats = CategoryIndex({"T": destinations})
    solver_dict = KPJSolver(g, cats, landmarks=min(3, g.n), kernel="dict")
    expected = {
        algorithm: solver_dict.top_k(source, category="T", k=k, algorithm=algorithm)
        for algorithm in sorted(ALGORITHMS)
    }
    for forced in (False, True):
        saved = native._FORCE_ARRAYS
        native._FORCE_ARRAYS = forced
        try:
            solver_native = KPJSolver(
                g, cats, landmarks=min(3, g.n), kernel="native"
            )
            for algorithm, a in expected.items():
                b = solver_native.top_k(
                    source, category="T", k=k, algorithm=algorithm
                )
                if algorithm == "da-spt":
                    assert _length_multiset(a) == _length_multiset(b), algorithm
                    continue
                assert [(p.length, p.nodes) for p in a.paths] == [
                    (p.length, p.nodes) for p in b.paths
                ], (algorithm, forced)
        finally:
            native._FORCE_ARRAYS = saved


@settings(max_examples=15, deadline=None)
@given(case=graph_and_query())
def test_native_cached_and_batch_axes(case):
    """``native`` parity across cached/uncached × batch/sequential.

    The speculative batch driver is active by default under
    ``native``; attaching a tracer forces the per-test sequential
    loop, so comparing a traced solver against untraced ones pins
    batch == sequential.  The cached/uncached axis rides along via
    ``prepared_cache_size``.
    """
    from repro.obs.tracing import SpanTracer

    g, source, destinations, k = case
    cats = CategoryIndex({"T": destinations})
    baseline = KPJSolver(g, cats, landmarks=min(3, g.n), kernel="dict").top_k(
        source, category="T", k=k, algorithm="iter-bound-spti"
    )
    expected = [(p.length, p.nodes) for p in baseline.paths]
    cached = KPJSolver(
        g, cats, landmarks=min(3, g.n), kernel="native", prepared_cache_size=8
    )
    uncached = KPJSolver(
        g, cats, landmarks=min(3, g.n), kernel="native", prepared_cache_size=0
    )
    sequential = KPJSolver(
        g, cats, landmarks=min(3, g.n), kernel="native", tracer=SpanTracer()
    )
    for solver in (cached, cached, uncached, sequential):  # 2nd cached = warm
        got = solver.top_k(source, category="T", k=k, algorithm="iter-bound-spti")
        assert [(p.length, p.nodes) for p in got.paths] == expected


@settings(max_examples=25, deadline=None)
@given(case=graph_and_query())
def test_cached_matches_uncached_on_every_algorithm(case):
    g, source, destinations, k = case
    cats = CategoryIndex({"T": destinations})
    cached = KPJSolver(g, cats, landmarks=2, prepared_cache_size=8)
    uncached = KPJSolver(g, cats, landmarks=2, prepared_cache_size=0)
    for algorithm in sorted(ALGORITHMS):
        first = cached.top_k(source, category="T", k=k, algorithm=algorithm)
        warm = cached.top_k(source, category="T", k=k, algorithm=algorithm)
        cold = uncached.top_k(source, category="T", k=k, algorithm=algorithm)
        assert _length_multiset(first) == _length_multiset(cold), algorithm
        assert _length_multiset(warm) == _length_multiset(cold), algorithm
    # With a positive cache bound the repeat queries must have hit.
    assert cached.cache_info()["hits"] > 0
    assert uncached.cache_info()["hits"] == 0


@settings(max_examples=15, deadline=None)
@given(
    case=graph_and_query(),
    kernel=st.sampled_from(KERNELS),
)
def test_paths_are_valid_under_both_kernels(case, kernel):
    """Contract check: whatever the kernel, returned paths are real."""
    g, source, destinations, k = case
    solver = KPJSolver(
        g, CategoryIndex({"T": destinations}), landmarks=None, kernel=kernel
    )
    result = solver.top_k(source, category="T", k=k)
    dest_set = set(destinations)
    previous = -math.inf
    for path in result.paths:
        assert path.nodes[0] == source
        assert path.nodes[-1] in dest_set
        assert g.is_simple_path(path.nodes)
        assert math.isclose(
            g.path_weight(path.nodes), path.length, rel_tol=1e-9, abs_tol=1e-9
        )
        assert path.length >= previous - 1e-12
        previous = path.length


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(case=graph_and_query())
def test_flat_matches_dict_exhaustive(case):
    """The slow sweep of the flat/dict invariant (``pytest -m slow``)."""
    test_flat_matches_dict_on_every_algorithm.hypothesis.inner_test(case)
