"""Property-based tests of landmark-bound admissibility."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.landmarks.index import LandmarkIndex
from repro.pathing.dijkstra import multi_source_distances, single_source_distances

INF = float("inf")


@st.composite
def weighted_graph(draw):
    n = draw(st.integers(4, 12))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    g = DiGraph(n)
    for u, v in edges:
        g.add_edge(u, v, float(draw(st.integers(1, 20))))
    return g.freeze()


@settings(max_examples=30, deadline=None)
@given(g=weighted_graph(), data=st.data())
def test_pairwise_bound_admissible(g, data):
    index = LandmarkIndex.build(g, num_landmarks=min(3, g.n), seed=0)
    u = data.draw(st.integers(0, g.n - 1))
    dist = single_source_distances(g, u)
    for v in range(g.n):
        lb = index.distance_bound(u, v)
        if dist[v] != INF:
            assert lb <= dist[v] + 1e-9
        assert lb >= 0.0 or lb == INF


@settings(max_examples=30, deadline=None)
@given(g=weighted_graph(), data=st.data())
def test_target_bounds_admissible_and_eq1_dominates(g, data):
    index = LandmarkIndex.build(g, num_landmarks=min(3, g.n), seed=1)
    count = data.draw(st.integers(1, 3))
    targets = tuple(
        data.draw(
            st.lists(
                st.integers(0, g.n - 1), min_size=count, max_size=count, unique=True
            )
        )
    )
    eq2 = index.to_target_bounds(targets)
    true = multi_source_distances(g.reversed_copy(), targets)
    for u in range(g.n):
        bound2 = eq2(u)
        bound1 = index.to_target_bound_eq1(u, targets)
        if true[u] != INF:
            assert bound2 <= true[u] + 1e-9
            assert bound1 <= true[u] + 1e-9
        # Eq.(1) is never looser than Eq.(2) (both clamp at 0).
        if not math.isinf(bound2):
            assert bound1 >= bound2 - 1e-9


@settings(max_examples=30, deadline=None)
@given(g=weighted_graph(), data=st.data())
def test_source_bounds_admissible(g, data):
    index = LandmarkIndex.build(g, num_landmarks=min(3, g.n), seed=2)
    count = data.draw(st.integers(1, 3))
    sources = tuple(
        data.draw(
            st.lists(
                st.integers(0, g.n - 1), min_size=count, max_size=count, unique=True
            )
        )
    )
    bounds = index.from_source_bounds(sources)
    true = multi_source_distances(g, sources)
    for u in range(g.n):
        if true[u] != INF:
            assert bounds(u) <= true[u] + 1e-9
