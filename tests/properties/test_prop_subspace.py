"""Property-based tests of subspace division and TestLB semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.brute_force import enumerate_simple_paths
from repro.core.subspace import Subspace, divide
from repro.graph.digraph import DiGraph
from repro.graph.virtual import build_query_graph
from repro.pathing.astar import bounded_astar_path
from repro.pathing.dijkstra import constrained_shortest_path


@st.composite
def query_case(draw):
    n = draw(st.integers(4, 8))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    g = DiGraph(n)
    for u, v in edges:
        g.add_edge(u, v, float(draw(st.integers(1, 9))))
    g.freeze()
    source = draw(st.integers(0, n - 1))
    count = draw(st.integers(1, 2))
    destinations = tuple(
        draw(
            st.lists(
                st.integers(0, n - 1), min_size=count, max_size=count, unique=True
            )
        )
    )
    return build_query_graph(g, (source,), destinations)


def subspace_members(qg, subspace):
    out = set()
    for path in enumerate_simple_paths(qg.graph, qg.source, (qg.target,)):
        nodes = path.nodes
        if nodes[: len(subspace.prefix)] != subspace.prefix:
            continue
        at = len(subspace.prefix)
        if at < len(nodes) and nodes[at] in subspace.banned:
            continue
        out.add(nodes)
    return out


@settings(max_examples=40, deadline=None)
@given(qg=query_case())
def test_division_partitions_the_space(qg):
    root = Subspace.entire(qg.source)
    paths = subspace_members(qg, root)
    if not paths:
        return
    best = min(paths, key=lambda nodes: (qg.graph.path_weight(nodes), nodes))
    children = list(
        divide(root, best, qg.graph.path_weight(best), qg.graph.edge_weight)
    )
    covered: set = set()
    for child in children:
        member_set = subspace_members(qg, child)
        assert not (member_set & covered), "children must be disjoint"
        covered |= member_set
    assert covered | {best} == paths
    assert best not in covered


@settings(max_examples=40, deadline=None)
@given(qg=query_case(), tau_scale=st.floats(0.3, 2.0))
def test_testlb_semantics_match_lemma_5_1(qg, tau_scale):
    """bounded A* returns the shortest path iff its length <= tau."""
    exact = constrained_shortest_path(qg.graph, qg.source, qg.target)
    if exact is None:
        return
    length = exact[1]
    tau = length * tau_scale
    found = bounded_astar_path(
        qg.graph, qg.source, qg.target, lambda _: 0.0, bound=tau
    )
    if length <= tau:
        assert found is not None
        assert found[1] == pytest.approx(length)
    else:
        assert found is None
