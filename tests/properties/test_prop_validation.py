"""Mutation-based property tests of the result validator.

A validator is only trustworthy if it *catches* corruption: take a
correct answer, apply a random mutation (inflate a length, truncate a
path, swap ranks, duplicate, reroute through a missing edge), and the
validator must flag it — while always passing the unmutated answer.
"""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.kpj import KPJSolver
from repro.core.result import Path, QueryResult
from repro.graph.categories import CategoryIndex
from repro.graph.digraph import DiGraph
from repro.validation import validate_result


@st.composite
def solved_query(draw):
    n = draw(st.integers(4, 9))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    g = DiGraph(n)
    for u, v in edges:
        g.add_edge(u, v, float(draw(st.integers(1, 9))))
    g.freeze()
    source = draw(st.integers(0, n - 1))
    destinations = tuple(
        draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=2, unique=True))
    )
    solver = KPJSolver(g, CategoryIndex({"T": destinations}), landmarks=None)
    k = draw(st.integers(2, 5))
    result = solver.top_k(source, category="T", k=k)
    return g, source, destinations, k, result


@settings(max_examples=40, deadline=None)
@given(case=solved_query())
def test_correct_answers_always_validate(case):
    g, source, destinations, k, result = case
    report = validate_result(g, result, [source], destinations, k)
    assert report.ok, report.violations


@settings(max_examples=40, deadline=None)
@given(case=solved_query(), data=st.data())
def test_mutations_are_caught(case, data):
    g, source, destinations, k, result = case
    assume(len(result.paths) >= 2)
    mutation = data.draw(
        st.sampled_from(
            ["inflate-length", "swap-ranks", "duplicate", "truncate", "teleport"]
        )
    )
    paths = list(result.paths)
    if mutation == "inflate-length":
        victim = paths[0]
        paths[0] = Path(victim.length + 1.0, victim.nodes)
    elif mutation == "swap-ranks":
        assume(not math.isclose(paths[0].length, paths[-1].length))
        paths[0], paths[-1] = paths[-1], paths[0]
    elif mutation == "duplicate":
        paths[-1] = paths[0]
        assume(len({p.nodes for p in paths}) != len(paths))
    elif mutation == "truncate":
        victim = paths[0]
        assume(len(victim.nodes) >= 2)
        truncated = victim.nodes[:-1]
        # Only a real violation if the new endpoint is not a destination
        # or the declared length no longer matches.
        paths[0] = Path(victim.length, truncated)
    elif mutation == "teleport":
        victim = paths[0]
        # Reroute through a node pair with no edge.
        missing = None
        for u in range(g.n):
            for v in range(g.n):
                if u != v and not g.has_edge(u, v):
                    missing = (u, v)
                    break
            if missing:
                break
        assume(missing is not None)
        paths[0] = Path(victim.length, missing)
    mutated = QueryResult(paths=paths, algorithm="mutated")
    report = validate_result(g, mutated, [source], destinations, k)
    assert not report.ok, f"{mutation} slipped past the validator"
