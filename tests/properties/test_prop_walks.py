"""Property-based tests for top-k general shortest paths (walks)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.yen import yen_ksp
from repro.core.walks import top_k_walks
from repro.graph.digraph import DiGraph


@st.composite
def walk_case(draw):
    n = draw(st.integers(3, 8))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    chosen = draw(
        st.lists(st.sampled_from(possible), min_size=n, max_size=3 * n, unique=True)
    )
    g = DiGraph(n)
    for u, v in chosen:
        g.add_edge(u, v, float(draw(st.integers(1, 9))))
    g.freeze()
    source = draw(st.integers(0, n - 1))
    target = draw(st.integers(0, n - 1))
    k = draw(st.integers(1, 6))
    return g, source, target, k


@settings(max_examples=50, deadline=None)
@given(case=walk_case())
def test_walks_sorted_valid_and_distinct(case):
    g, source, target, k = case
    walks = top_k_walks(g, source, target, k)
    previous = -math.inf
    seen = set()
    for walk in walks:
        assert walk.nodes[0] == source
        assert walk.nodes[-1] == target
        assert g.path_weight(walk.nodes) == pytest.approx(walk.length)
        assert walk.length >= previous - 1e-9
        previous = walk.length
        assert walk.nodes not in seen
        seen.add(walk.nodes)


@settings(max_examples=50, deadline=None)
@given(case=walk_case())
def test_walks_dominate_simple_paths(case):
    """The i-th shortest walk is never longer than the i-th shortest
    simple path (walks are a superset of simple paths)."""
    g, source, target, k = case
    if source == target:
        return
    simple = yen_ksp(g, source, target, k)
    walks = top_k_walks(g, source, target, k)
    assert len(walks) >= len(simple)
    for walk, path in zip(walks, simple):
        assert walk.length <= path.length + 1e-9


@settings(max_examples=30, deadline=None)
@given(case=walk_case())
def test_first_walk_is_shortest_path(case):
    from repro.pathing.dijkstra import shortest_path

    g, source, target, k = case
    walks = top_k_walks(g, source, target, 1)
    exact = shortest_path(g, source, target)
    if source == target:
        assert walks and walks[0].length == 0.0
    elif exact is None:
        assert walks == []
    else:
        assert walks[0].length == pytest.approx(exact[1])
