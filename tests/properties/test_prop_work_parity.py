"""Cross-kernel work-counter parity over the pinned fuzz corpus.

The dict, flat, and native kernels claim to execute the *same*
algorithm, and the uniform work counters make that claim falsifiable:
:data:`repro.core.stats.WORK_PARITY_FIELDS` (relaxations, heap
pushes/pops, settled nodes, TestLB verdict tallies, …) must agree
**exactly** — not approximately — across all three substrates for any
one query.  Every committed corpus case runs through
:func:`repro.fuzz.invariants.work_parity_failures` with the algorithm
rotated per case (the harness convention), and the native kernel is
exercised in both modes: whatever the environment provides (numba JIT,
or flat-delegating fallback without it) and with the array engine
forced (``_FORCE_ARRAYS``), which runs the ``@njit`` kernel bodies
interpreted so their counter arithmetic is covered even where numba is
absent.
"""

from __future__ import annotations

import pytest

from repro.core.kpj import ALGORITHMS
from repro.fuzz import seed_corpus_cases
from repro.fuzz.invariants import work_parity_failures
from repro.pathing import native

_CASES = list(seed_corpus_cases())
_ALGOS = sorted(ALGORITHMS)


def _algorithm_for(index: int) -> str:
    return _ALGOS[index % len(_ALGOS)]


@pytest.mark.parametrize("forced", [False, True], ids=["ambient", "forced-arrays"])
@pytest.mark.parametrize(
    "index,name", [(i, name) for i, (name, _) in enumerate(_CASES)]
)
def test_corpus_case_work_parity(index, name, forced, monkeypatch):
    monkeypatch.setattr(native, "_FORCE_ARRAYS", forced)
    case = _CASES[index][1]
    failures = work_parity_failures(case, _algorithm_for(index))
    assert not failures, failures


@pytest.mark.parametrize("algorithm", _ALGOS)
def test_all_algorithms_work_parity_on_one_case(algorithm):
    """Every registry entry holds parity on at least one dense case."""
    by_name = dict(_CASES)
    case = by_name.get("near-clique-5", _CASES[0][1])
    failures = work_parity_failures(case, algorithm)
    assert not failures, failures


def test_da_spt_parity_on_zero_weight_ties():
    """Fuzz-found regression (seed 0, case 87, shrunk to 11 nodes).

    On near-clique graphs with zero-weight edges the backward SPT has
    many equally-shortest trees; the scipy/compiled builds and the
    dict build used to pick different ones, so DA-SPT's Pascoal
    simplicity check passed on one kernel and fell through to the
    counted Gao A* on another (``shortest_path_computations`` dict=1
    vs flat/native=0, ``edges_relaxed`` 5 vs 0).  Canonicalised
    successor pointers (:func:`repro.pathing.spt.canonical_next_hops`)
    make the tree — and therefore the counters — kernel-independent.
    """
    from repro.fuzz.generators import FuzzCase

    case = FuzzCase.from_dict(
        {
            "kind": "kpj",
            "n": 11,
            "edges": [
                [0, 4, 1.0],
                [1, 10, 1.0],
                [2, 9, 0.0],
                [3, 5, 0.0],
                [3, 7, 0.0],
                [4, 8, 0.0],
                [5, 0, 0.0],
                [6, 9, 0.0],
                [7, 2, 1.0],
                [8, 3, 1.0],
                [8, 6, 0.0],
                [10, 8, 0.0],
            ],
            "sources": [1],
            "destinations": [9],
            "k": 1,
            "alpha": 1.1,
            "seed": 87,
            "shape": "near_clique",
        }
    )
    failures = work_parity_failures(case, "da-spt")
    assert not failures, failures


def test_parity_failures_report_kernel_and_counter():
    """A fabricated divergence names the counter and both kernels."""
    from repro.core.stats import SearchStats
    from repro.fuzz import invariants

    calls = []

    def fake_run_query(solver, case, algorithm):
        calls.append(None)
        stats = SearchStats(heap_pushes=len(calls))

        class R:
            pass

        r = R()
        r.stats = stats
        return r

    original = invariants.run_query
    invariants.run_query = fake_run_query
    try:
        failures = invariants.work_parity_failures(_CASES[0][1], _ALGOS[0])
    finally:
        invariants.run_query = original
    assert any("heap_pushes" in f and "dict=1" in f for f in failures)
