"""Tests for the batch/parallel query-serving layer."""
