"""The process-wide serving epoch (`repro.server.epoch`).

Regression suite for the latent `run_batch` timing bug: queue-wait
offsets used to be rebased against each batch's own start time, so
two batches (or a batch and the resident service) produced offsets on
*different* timelines and load-test histograms were not comparable
across targets.  All serving surfaces now share one
``service_epoch()`` origin, pinned at first use.
"""

from time import sleep

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.server.epoch import service_epoch, since_epoch
from repro.server.pool import BatchQuery, run_batch
from repro.server.service import QueryService


@pytest.fixture(scope="module")
def sj_solver():
    dataset = road_network("SJ")
    return dataset, KPJSolver(dataset.graph, dataset.categories, landmarks=4)


def _queries(dataset, count):
    return [
        BatchQuery(source=(i * 31) % dataset.n, category="T1", k=3)
        for i in range(count)
    ]


class TestEpochPrimitive:
    def test_epoch_is_pinned_once(self):
        assert service_epoch() == service_epoch()

    def test_since_epoch_is_monotonic_non_negative(self):
        a = since_epoch()
        sleep(0.01)
        b = since_epoch()
        assert 0.0 <= a < b

    def test_since_epoch_accepts_explicit_timestamps(self):
        origin = service_epoch()
        assert since_epoch(origin) == 0.0
        assert since_epoch(origin + 2.5) == pytest.approx(2.5)


class TestBatchOffsetsShareOneTimeline:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_second_batch_continues_the_clock(self, sj_solver, workers):
        """The regression: offsets of a later batch must be strictly
        beyond the earlier batch's, never reset to ~0."""
        dataset, solver = sj_solver
        first = run_batch(solver, _queries(dataset, 4), workers=workers)
        sleep(0.02)
        second = run_batch(solver, _queries(dataset, 4), workers=workers)
        latest_first = max(r.timing["enqueued_at_s"] for r in first)
        earliest_second = min(r.timing["enqueued_at_s"] for r in second)
        assert earliest_second > latest_first

    def test_offsets_are_epoch_relative(self, sj_solver):
        dataset, solver = sj_solver
        before = since_epoch()
        results = run_batch(solver, _queries(dataset, 3), workers=1)
        after = since_epoch()
        for r in results:
            assert before <= r.timing["enqueued_at_s"] <= after
            assert before <= r.timing["started_at_s"] <= after

    def test_pool_and_service_offsets_are_comparable(self, sj_solver):
        """Cross-target comparability — the reason the epoch exists:
        a pool batch and a service query interleaved in time must
        carry interleaved offsets."""
        dataset, solver = sj_solver
        pooled = run_batch(solver, _queries(dataset, 3), workers=2)
        with QueryService(solver, workers=1) as service:
            served = service.query(BatchQuery(source=1, category="T1", k=3))
        pooled_latest = max(r.timing["started_at_s"] for r in pooled)
        assert served.timing["enqueued_at_s"] > pooled_latest
