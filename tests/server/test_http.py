"""The `kpj serve` HTTP front-end (`repro.server.http`).

A real service behind a real socket (ephemeral port via the ``ready``
callback), exercised with stdlib urllib only: health, query, metrics
exposition, status, and the error-code mapping.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.obs.metrics import parse_prom
from repro.server.http import serve_forever
from repro.server.service import QueryService
from repro.server.shared import active_segments


@pytest.fixture(scope="module")
def endpoint():
    """A served QueryService on an OS-assigned port; torn down after."""
    dataset = road_network("SJ")
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=4)
    service = QueryService(solver, workers=1, prewarm=("T1",))
    bound: dict = {}
    ready = threading.Event()
    control: dict = {}

    def run():
        async def main():
            stop = asyncio.Event()
            control["loop"] = asyncio.get_running_loop()
            control["stop"] = stop
            await serve_forever(
                service,
                "127.0.0.1",
                0,
                ready=lambda addr: (bound.update(addr=addr), ready.set()),
                stop=stop,
            )
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(60), "server did not come up"
    host, port = bound["addr"]
    yield f"http://{host}:{port}", service
    control["loop"].call_soon_threadsafe(control["stop"].set)
    thread.join(timeout=30)
    assert not thread.is_alive()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, endpoint):
        base, service = endpoint
        status, body = _get(base + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["workers"] == service.workers

    def test_query_roundtrip_matches_direct(self, endpoint):
        base, service = endpoint
        status, body = _post(
            base + "/query", {"source": 3, "category": "T1", "k": 4}
        )
        assert status == 200
        direct = service.solver.top_k(3, category="T1", k=4)
        assert [p["length"] for p in body["paths"]] == [
            p.length for p in direct.paths
        ]
        assert [p["nodes"] for p in body["paths"]] == [
            list(p.nodes) for p in direct.paths
        ]
        assert body["query_id"]
        assert set(body["timing"]) == {
            "enqueued_at_s", "started_at_s", "queue_wait_s"
        }

    def test_metrics_exposition_parses(self, endpoint):
        base, _ = endpoint
        _post(base + "/query", {"source": 1, "category": "T1", "k": 2})
        status, body = _get(base + "/metrics")
        assert status == 200
        samples = parse_prom(body.decode(), require_non_negative=False)
        assert samples[("kpj_service_queries_total", ())] >= 1.0

    def test_status_reports_service_shape(self, endpoint):
        base, service = endpoint
        status, body = _get(base + "/status")
        assert status == 200
        described = json.loads(body)
        assert described["workers"] == service.workers
        assert described["segments"] == list(service.shared_segments())
        assert described["metrics"]["phases"]["warmup"]["calls"] == 1


class TestErrorMapping:
    def _error(self, base, payload):
        try:
            _post(base + "/query", payload)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())
        pytest.fail("expected an HTTP error")

    def test_bad_query_is_400(self, endpoint):
        base, _ = endpoint
        code, body = self._error(base, {"source": 1, "category": "NOPE"})
        assert code == 400
        assert "NOPE" in body["error"]

    def test_malformed_body_is_400(self, endpoint):
        base, _ = endpoint
        code, body = self._error(base, {"bogus": True})
        assert code == 400

    def test_deadline_is_504(self, endpoint):
        base, service = endpoint
        service.sleep(0.3, worker=0)
        code, body = self._error(
            base, {"source": 1, "category": "T1", "timeout_s": 0.02}
        )
        assert code == 504
        assert "deadline exceeded" in body["error"]

    def test_unknown_path_is_404(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/nope")
        assert excinfo.value.code == 404

    def test_wrong_method_is_405(self, endpoint):
        base, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/query")  # GET on a POST-only route
        assert excinfo.value.code == 405


def test_shutdown_unlinks_segments():
    """A full serve lifecycle leaves no shared memory behind."""
    dataset = road_network("SJ")
    solver = KPJSolver(dataset.graph, dataset.categories, landmarks=2)
    service = QueryService(solver, workers=1)
    control: dict = {}
    ready = threading.Event()

    def run():
        async def main():
            stop = asyncio.Event()
            control["loop"] = asyncio.get_running_loop()
            control["stop"] = stop
            await serve_forever(
                service, "127.0.0.1", 0,
                ready=lambda addr: ready.set(), stop=stop,
            )
        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(60)
    segments = service.shared_segments()
    assert set(segments) <= set(active_segments())
    control["loop"].call_soon_threadsafe(control["stop"].set)
    thread.join(timeout=30)
    assert not set(segments) & set(active_segments())
