"""Unit tests for batched parallel query serving.

The acceptance bar for the pool is strict: answers from
``solve_batch(..., workers>1)`` must be **identical** to sequential
solving, in submission order, with the prepared-category cache warm.
"""

import pytest

from repro.core.kpj import KPJSolver
from repro.core.stats import SearchStats
from repro.datasets.registry import road_network
from repro.exceptions import QueryError
from repro.obs.metrics import SEARCH_PHASES, MetricsRegistry
from repro.server.pool import BatchQuery, _coerce, run_batch


@pytest.fixture(scope="module")
def sj_solver():
    """A solver over the SJ registry dataset (small but non-trivial)."""
    dataset = road_network("SJ")
    return dataset, KPJSolver(dataset.graph, dataset.categories, landmarks=8)


def _query_mix(dataset, count: int) -> list[BatchQuery]:
    """A deterministic workload cycling sources and categories."""
    cats = sorted(dataset.categories._sets)
    return [
        BatchQuery(
            source=(i * 97) % dataset.n,
            category=cats[i % len(cats)],
            k=5,
            algorithm="iter-bound-spti",
        )
        for i in range(count)
    ]


def _fingerprint(results):
    return [
        (r.algorithm, tuple((p.nodes, p.length) for p in r.paths))
        for r in results
    ]


class TestCoercion:
    def test_batchquery_passthrough(self):
        q = BatchQuery(source=1, category="T1")
        assert _coerce(q) is q

    def test_mapping_coerces(self):
        q = _coerce({"source": 2, "destinations": [5, 3], "k": 2})
        assert q == BatchQuery(source=2, destinations=(5, 3), k=2)

    def test_malformed_mapping_raises(self):
        with pytest.raises(QueryError, match="malformed"):
            _coerce({"source": 1, "bogus_field": 3})

    def test_wrong_type_raises(self):
        with pytest.raises(QueryError, match="BatchQuery or mappings"):
            _coerce(42)


class TestSequential:
    def test_empty_batch(self, sj_solver):
        _, solver = sj_solver
        assert solver.solve_batch([]) == []

    def test_matches_top_k(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 6)
        results = solver.solve_batch(queries)
        for q, r in zip(queries, results):
            direct = solver.top_k(
                q.source, category=q.category, k=q.k, algorithm=q.algorithm
            )
            assert _fingerprint([r]) == _fingerprint([direct])

    def test_invalid_query_propagates(self, sj_solver):
        _, solver = sj_solver
        with pytest.raises(QueryError):
            solver.solve_batch([BatchQuery(source=0, category="no-such")])

    def test_repeat_categories_hit_cache(self, sj_solver):
        dataset, _ = sj_solver
        solver = KPJSolver(dataset.graph, dataset.categories, landmarks=None)
        queries = [
            BatchQuery(source=s, category="T2", k=3) for s in (1, 5, 9, 13)
        ]
        results = solver.solve_batch(queries)
        hits = sum(r.stats.prepared_cache_hits for r in results)
        assert hits == len(queries) - 1  # all but the first reuse the entry


class TestParallel:
    def test_fifty_queries_identical_to_sequential(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 50)
        sequential = solver.solve_batch(queries, workers=1)
        parallel = solver.solve_batch(queries, workers=3)
        assert _fingerprint(parallel) == _fingerprint(sequential)

    def test_parallel_queries_arrive_with_warm_cache(self, sj_solver):
        dataset, _ = sj_solver
        solver = KPJSolver(dataset.graph, dataset.categories, landmarks=None)
        queries = [
            BatchQuery(source=s, category="T1", k=3) for s in range(10)
        ]
        results = solver.solve_batch(queries, workers=2)
        # run_batch warms the prepared cache before forking, so every
        # worker-answered query is a cache hit.
        assert all(r.stats.prepared_cache_hits == 1 for r in results)
        assert sum(r.stats.prepared_cache_misses for r in results) == 0

    def test_order_preserved_under_parallelism(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 12)
        results = solver.solve_batch(queries, workers=4)
        for q, r in zip(queries, results):
            direct = solver.top_k(
                q.source, category=q.category, k=q.k, algorithm=q.algorithm
            )
            assert _fingerprint([r]) == _fingerprint([direct])

    def test_workers_capped_by_batch_size(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 2)
        results = solver.solve_batch(queries, workers=16)
        assert len(results) == 2

    def test_run_batch_function_directly(self, sj_solver):
        dataset, solver = sj_solver
        queries = [{"source": 3, "category": "T2", "k": 2}]
        results = run_batch(solver, queries, workers=2)
        assert len(results) == 1
        assert results[0].paths


class TestStatsAggregation:
    def test_sequential_total_is_sum_of_results(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 8)
        total = SearchStats()
        results = solver.solve_batch(queries, stats=total)
        expected = SearchStats()
        for r in results:
            expected.merge(r.stats)
        assert total.as_dict() == expected.as_dict()
        assert total.lb_tests > 0
        assert total.nodes_settled > 0

    def test_parallel_total_includes_worker_counters(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 12)
        seq_total = SearchStats()
        solver.solve_batch(queries, workers=1, stats=seq_total)
        par_total = SearchStats()
        results = solver.solve_batch(queries, workers=3, stats=par_total)
        # Search-work counters ride back with each result and merge to
        # the same totals regardless of which process did the work.
        seq, par = seq_total.as_dict(), par_total.as_dict()
        for field in (
            "shortest_path_computations",
            "lower_bound_computations",
            "lb_tests",
            "lb_test_failures",
            "nodes_settled",
            "edges_relaxed",
            "subspaces_created",
        ):
            assert par[field] == seq[field], field
        assert par["lb_tests"] == sum(r.stats.lb_tests for r in results)

    def test_parallel_total_counts_parent_warm_up(self, sj_solver):
        dataset, _ = sj_solver
        solver = KPJSolver(dataset.graph, dataset.categories, landmarks=None)
        queries = [
            BatchQuery(source=s, category="T1", k=3) for s in range(8)
        ]
        total = SearchStats()
        solver.solve_batch(queries, workers=2, stats=total)
        # The pre-fork warm-up's cache misses belong to no single query
        # but must appear in the aggregate; every worker-answered query
        # is then a hit.
        assert total.prepared_cache_misses >= 1
        assert total.prepared_cache_hits >= len(queries)

    def test_stats_none_is_default(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 2)
        assert _fingerprint(solver.solve_batch(queries)) == _fingerprint(
            solver.solve_batch(queries, stats=None)
        )


class TestMetricsAggregation:
    def test_sequential_aggregate_equals_sum_of_snapshots(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 6)
        agg = MetricsRegistry()
        results = solver.solve_batch(queries, metrics=agg)
        assert solver.metrics is None  # temporary registry detached
        expected = MetricsRegistry()
        for r in results:
            assert r.metrics is not None
            expected.merge(r.metrics)
        # The queue-wait histogram is recorded parent-side (workers
        # cannot know the enqueue time), so it is the one series the
        # per-query snapshots never contain.
        queue_wait = agg.histograms.pop("queue_wait_ms")
        assert queue_wait.total == len(queries)
        # No fork, no warm-up: the aggregate IS the sum of snapshots.
        assert agg.as_dict() == expected.as_dict()
        assert agg.counters["queries"] == len(queries)
        assert agg.histograms["query_latency_ms"].total == len(queries)

    def test_parallel_aggregate_is_snapshots_plus_warmup(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 12)
        agg = MetricsRegistry()
        results = solver.solve_batch(queries, workers=3, metrics=agg)
        expected = MetricsRegistry()
        for r in results:
            assert r.metrics is not None
            expected.merge(r.metrics)
        assert "warmup" in agg.phases
        assert "warmup" not in expected.phases  # belongs to no query
        # Everything per-query matches the merged snapshots exactly;
        # only the warm-up's own phase/counters ride on top.
        assert agg.counters["queries"] == expected.counters["queries"] == len(
            queries
        )
        for name in SEARCH_PHASES:
            if name in expected.phases:
                assert agg.phases[name] == expected.phases[name], name
        assert agg.histograms["query_latency_ms"].total == len(queries)

    def test_parallel_and_sequential_deterministic_totals_match(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 12)
        seq, par = MetricsRegistry(), MetricsRegistry()
        solver.solve_batch(queries, workers=1, metrics=seq)
        solver.solve_batch(queries, workers=3, metrics=par)
        # Wall times differ run to run, but the *call counts* of every
        # search phase are a property of the algorithm, not the
        # schedule (the module solver's cache is warm for both runs).
        assert seq.counters["queries"] == par.counters["queries"]
        for name in SEARCH_PHASES:
            seq_calls = seq.phases.get(name, [0, 0])[1]
            par_calls = par.phases.get(name, [0, 0])[1]
            assert seq_calls == par_calls, name

    def test_solver_registry_kept_when_preattached(self, sj_solver):
        dataset, _ = sj_solver
        own = MetricsRegistry()
        solver = KPJSolver(
            dataset.graph, dataset.categories, landmarks=None, metrics=own
        )
        queries = [BatchQuery(source=s, category="T2", k=3) for s in (1, 5)]
        agg = MetricsRegistry()
        solver.solve_batch(queries, metrics=agg)
        assert solver.metrics is own  # not detached
        assert own.counters["queries"] == 2  # sequential merges land on it
        assert agg.counters["queries"] == 2

    def test_metrics_none_leaves_results_bare(self, sj_solver):
        dataset, solver = sj_solver
        results = solver.solve_batch(_query_mix(dataset, 2))
        assert all(r.metrics is None for r in results)
        assert all(r.elapsed_ms > 0 for r in results)


def _worker_tag_total(metrics) -> tuple[int, set[str]]:
    """Worker tags from a registry or a per-query snapshot mapping."""
    counters = getattr(metrics, "counters", None)
    if counters is None:
        counters = (metrics or {}).get("counters", {})
    tags = {
        name: int(count)
        for name, count in counters.items()
        if name.startswith("worker_") and name.endswith("_queries")
    }
    return sum(tags.values()), set(tags)


class TestWorkerAttribution:
    def test_parallel_snapshots_carry_worker_index(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 8)
        agg = MetricsRegistry()
        results = solver.solve_batch(queries, workers=2, metrics=agg)
        # Every query was answered by exactly one indexed worker...
        total, names = _worker_tag_total(agg)
        assert total == len(queries)
        assert names <= {"worker_0_queries", "worker_1_queries"}
        # ...and each per-query snapshot names exactly one worker.
        for r in results:
            per_query, per_names = _worker_tag_total(r.metrics)
            assert per_query == 1 and len(per_names) == 1

    def test_sequential_batches_are_untagged(self, sj_solver):
        dataset, solver = sj_solver
        agg = MetricsRegistry()
        solver.solve_batch(_query_mix(dataset, 3), workers=1, metrics=agg)
        assert _worker_tag_total(agg) == (0, set())


class TestFailureMerge:
    """A failing query must not discard completed queries' telemetry."""

    def _mixed_batch(self, dataset, good: int) -> list[BatchQuery]:
        queries = _query_mix(dataset, good)
        queries.append(BatchQuery(source=0, category="NOPE", k=3))
        return queries

    @pytest.mark.parametrize("workers", [1, 2])
    def test_completed_metrics_survive_a_failure(self, sj_solver, workers):
        dataset, solver = sj_solver
        agg = MetricsRegistry()
        stats = SearchStats()
        with pytest.raises(QueryError, match="NOPE"):
            solver.solve_batch(
                self._mixed_batch(dataset, 4),
                workers=workers,
                metrics=agg,
                stats=stats,
            )
        # Sequential execution stops at the failure; the pool drains
        # the whole batch.  Either way nothing completed is dropped:
        # the four good queries precede the bad one, so all four land.
        assert agg.counters["queries"] == 4
        assert agg.histograms["query_latency_ms"].total == agg.counters["queries"]
        assert stats.shortest_path_computations > 0

    def test_failure_without_metrics_still_raises(self, sj_solver):
        dataset, solver = sj_solver
        with pytest.raises(QueryError, match="NOPE"):
            solver.solve_batch(self._mixed_batch(dataset, 2), workers=2)

    def test_timing_merged_on_failure_path(self, sj_solver):
        """Like the completed-snapshot merge, sibling timing telemetry
        survives a bad query: completed queries' queue waits land in
        the aggregate even though the batch raises."""
        dataset, solver = sj_solver
        agg = MetricsRegistry()
        with pytest.raises(QueryError, match="NOPE"):
            solver.solve_batch(
                self._mixed_batch(dataset, 4), workers=2, metrics=agg
            )
        assert agg.histograms["queue_wait_ms"].total == 4


class TestTimingStamps:
    """Serving-side queue-wait vs service-time attribution (§3h)."""

    def test_sequential_results_carry_zero_queue_wait(self, sj_solver):
        dataset, solver = sj_solver
        results = solver.solve_batch(_query_mix(dataset, 6), workers=1)
        for r in results:
            assert r.timing is not None
            assert r.timing["queue_wait_s"] == 0.0
            assert r.timing["enqueued_at_s"] >= 0.0
            assert r.timing["started_at_s"] == r.timing["enqueued_at_s"]

    def test_parallel_results_carry_consistent_offsets(self, sj_solver):
        dataset, solver = sj_solver
        results = solver.solve_batch(_query_mix(dataset, 12), workers=2)
        for r in results:
            timing = r.timing
            assert timing is not None
            assert set(timing) == {
                "enqueued_at_s", "started_at_s", "queue_wait_s"
            }
            assert timing["started_at_s"] >= timing["enqueued_at_s"] >= 0.0
            assert timing["queue_wait_s"] == pytest.approx(
                timing["started_at_s"] - timing["enqueued_at_s"]
            )

    def test_queue_wait_histogram_counts_every_completion(self, sj_solver):
        dataset, solver = sj_solver
        agg = MetricsRegistry()
        queries = _query_mix(dataset, 8)
        solver.solve_batch(queries, workers=2, metrics=agg)
        hist = agg.histograms["queue_wait_ms"]
        assert hist.total == len(queries)
        assert hist.sum >= 0.0

    def test_timing_serialises_in_to_dict(self, sj_solver):
        dataset, solver = sj_solver
        (result,) = solver.solve_batch(_query_mix(dataset, 1), workers=1)
        assert result.to_dict()["timing"] == result.timing


@pytest.mark.slow
def test_large_batch_identical_across_worker_counts(sj_solver):
    """200 queries, every worker count 1..4, identical fingerprints."""
    dataset, solver = sj_solver
    queries = _query_mix(dataset, 200)
    baseline = solver.solve_batch(queries, workers=1)
    for workers in (2, 3, 4):
        got = solver.solve_batch(queries, workers=workers)
        assert _fingerprint(got) == _fingerprint(baseline), workers
