"""Batch span trees: worker snapshots re-root under the batch span."""

from __future__ import annotations

import os

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.obs.tracing import SpanTracer, chrome_trace, validate_chrome_trace
from repro.server.pool import BatchQuery


@pytest.fixture()
def sj_solver():
    dataset = road_network("SJ")
    return dataset, KPJSolver(dataset.graph, dataset.categories, landmarks=8)


def _workload(count: int = 6) -> list[BatchQuery]:
    return [
        BatchQuery(source=(i * 97) % 500, category="T2", k=4)
        for i in range(count)
    ]


def _tree_checks(tracer: SpanTracer, expected_queries: int):
    snap = tracer.as_dict()
    spans = snap["spans"]
    (batch,) = [s for s in spans if s["name"] == "batch"]
    queries = [s for s in spans if s["name"] == "query"]
    assert len(queries) == expected_queries
    # every query tree hangs off the batch span
    assert all(q["parent"] == batch["id"] for q in queries)
    by_id = {s["id"]: s for s in spans}
    for s in spans:
        if s["parent"] is not None:
            assert s["parent"] in by_id  # no dangling parents
    # no timestamp inversions: children start within the parent and a
    # child interval never outruns its parent's (perf_counter is one
    # machine-wide monotonic clock, shared across forked workers)
    eps = 1e-6
    for s in spans:
        parent = by_id.get(s["parent"]) if s["parent"] is not None else None
        if parent is None:
            continue
        assert s["ts"] >= parent["ts"] - eps, (s["name"], parent["name"])
        assert s["ts"] + s["dur"] <= parent["ts"] + parent["dur"] + eps, (
            s["name"], parent["name"],
        )
    return snap, batch, queries


class TestSequentialBatchTracing:
    def test_batch_span_reroots_query_trees(self, sj_solver):
        _, solver = sj_solver
        tracer = SpanTracer()
        results = solver.solve_batch(_workload(), workers=1, tracer=tracer)
        assert all(r.trace is not None for r in results)
        snap, batch, queries = _tree_checks(tracer, len(results))
        assert batch["attrs"]["queries"] == len(results)
        assert validate_chrome_trace(chrome_trace(snap)) == len(snap["spans"])

    def test_own_tracer_removed_after_batch(self, sj_solver):
        _, solver = sj_solver
        assert solver.tracer is None
        solver.solve_batch(_workload(2), workers=1, tracer=SpanTracer())
        assert solver.tracer is None

    def test_no_tracer_leaves_results_bare(self, sj_solver):
        _, solver = sj_solver
        results = solver.solve_batch(_workload(2), workers=1)
        assert all(r.trace is None for r in results)

    def test_sampling_stride_respected(self, sj_solver):
        _, solver = sj_solver
        tracer = SpanTracer(sample_every=2)
        results = solver.solve_batch(_workload(4), workers=1, tracer=tracer)
        traced = [r.trace is not None for r in results]
        assert traced == [True, False, True, False]


class TestParallelBatchTracing:
    def test_worker_spans_reroot_with_foreign_pids(self, sj_solver):
        """Worker span trees come home, re-root, and keep their pid."""
        _, solver = sj_solver
        tracer = SpanTracer()
        results = solver.solve_batch(_workload(8), workers=2, tracer=tracer)
        assert all(r.trace is not None for r in results)
        snap, batch, queries = _tree_checks(tracer, len(results))
        pids = {q["pid"] for q in queries}
        # forked workers recorded under their own pids, none of them ours
        assert os.getpid() not in pids
        assert len(pids) >= 1  # >=2 usually, but sharding may starve one
        assert batch["pid"] == os.getpid()
        # warmup phase recorded in the parent, under the batch span
        (warmup,) = [s for s in snap["spans"] if s["name"] == "warmup"]
        assert warmup["parent"] == batch["id"]
        doc = chrome_trace(snap)
        assert validate_chrome_trace(doc) == len(snap["spans"])
        lanes = {e["pid"] for e in doc["traceEvents"]}
        assert len(lanes) >= 2  # parent lane + at least one worker lane

    def test_parallel_results_identical_to_sequential(self, sj_solver):
        _, solver = sj_solver
        queries = _workload(8)
        sequential = solver.solve_batch(queries, workers=1)
        parallel = solver.solve_batch(queries, workers=2, tracer=SpanTracer())
        assert [r.lengths for r in sequential] == [r.lengths for r in parallel]
