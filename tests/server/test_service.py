"""The resident-worker query service (`repro.server.service`).

The acceptance bar mirrors `test_pool.py`: answers through the
service must be identical to sequential solving, with the additional
service-tier contracts on top — shared-memory residency visible from
the workers, warm-up paid exactly once, telemetry on the standard
MetricsRegistry stack, and no shared-memory segments leaked after
shutdown.
"""

import pytest

from repro.core.kpj import KPJSolver
from repro.core.stats import SearchStats
from repro.datasets.registry import road_network
from repro.exceptions import QueryError
from repro.obs.metrics import MetricsRegistry, parse_prom
from repro.server.pool import BatchQuery, run_batch
from repro.server.service import QueryService, run_service_batch
from repro.server.shared import active_segments


@pytest.fixture(scope="module")
def sj_solver():
    dataset = road_network("SJ")
    return dataset, KPJSolver(dataset.graph, dataset.categories, landmarks=8)


@pytest.fixture(scope="module")
def service(sj_solver):
    """One module-wide running service (startup forks processes)."""
    _, solver = sj_solver
    with QueryService(solver, workers=2, prewarm=("T2",)) as svc:
        yield svc


def _query_mix(dataset, count):
    cats = sorted(dataset.categories._sets)
    return [
        BatchQuery(source=(i * 97) % dataset.n, category=cats[i % len(cats)], k=5)
        for i in range(count)
    ]


def _fingerprint(results):
    return [
        (r.algorithm, tuple((p.nodes, p.length) for p in r.paths))
        for r in results
    ]


class TestLifecycle:
    def test_construction_validates(self, sj_solver):
        _, solver = sj_solver
        with pytest.raises(QueryError, match="at least one worker"):
            QueryService(solver, workers=0)
        with pytest.raises(QueryError, match="max_pending"):
            QueryService(solver, max_pending=0)

    def test_double_start_rejected(self, service):
        with pytest.raises(QueryError, match="already started"):
            service.start()

    def test_submit_before_start_rejected(self, sj_solver):
        _, solver = sj_solver
        svc = QueryService(solver)
        with pytest.raises(QueryError, match="not running"):
            svc.query(BatchQuery(source=0, category="T1"))

    def test_shutdown_is_idempotent_and_unlinks(self, sj_solver):
        _, solver = sj_solver
        svc = QueryService(solver, workers=1)
        svc.start()
        segments = svc.shared_segments()
        assert all(name in active_segments() for name in segments)
        svc.shutdown()
        svc.shutdown()
        assert not set(segments) & set(active_segments())
        with pytest.raises(QueryError, match="not running"):
            svc.query(BatchQuery(source=0, category="T1"))

    def test_workers_are_resident_processes(self, service):
        import os

        pids = service.worker_pids()
        assert len(pids) == 2
        assert os.getpid() not in pids
        assert len(set(pids)) == 2


class TestCorrectness:
    def test_answers_identical_to_sequential(self, service, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 20)
        results = service.solve(queries)
        for q, r in zip(queries, results):
            direct = solver.top_k(
                q.source, category=q.category, k=q.k, algorithm=q.algorithm
            )
            assert _fingerprint([r]) == _fingerprint([direct])

    def test_destination_set_queries(self, service, sj_solver):
        dataset, solver = sj_solver
        q = BatchQuery(source=3, destinations=(9, 17, 25), k=4)
        result = service.query(q)
        direct = solver.top_k(q.source, destinations=q.destinations, k=q.k)
        assert _fingerprint([result]) == _fingerprint([direct])

    def test_invalid_query_is_clean_error(self, service):
        with pytest.raises(QueryError, match="NOPE"):
            service.query(BatchQuery(source=0, category="NOPE"))
        # The service survives the bad query.
        assert service.query(BatchQuery(source=1, category="T1", k=2)).paths

    def test_queries_hit_the_resident_warm_cache(self, service, sj_solver):
        # Steady state: the worker's prepared entry serves the query,
        # so its internal prepare is a cache hit, never a rebuild.
        result = service.query(BatchQuery(source=5, category="T2", k=3))
        assert result.stats.prepared_cache_hits >= 1
        assert result.stats.prepared_cache_misses == 0


class TestSharedResidency:
    def test_workers_map_the_parent_segments_read_only(self, service):
        for worker in range(service.workers):
            info = service.ping(worker)
            assert info["segments"] == list(service.shared_segments())
            assert info["csr_readonly"] is True

    def test_prewarmed_category_is_warm_in_every_worker(self, service):
        for worker in range(service.workers):
            info = service.ping(worker)
            assert info["cache"]["entries"] >= 1


class TestTiming:
    def test_timing_rebased_to_service_epoch(self, service, sj_solver):
        dataset, _ = sj_solver
        results = service.solve(_query_mix(dataset, 6))
        for r in results:
            timing = r.timing
            assert set(timing) == {
                "enqueued_at_s", "started_at_s", "queue_wait_s"
            }
            assert timing["started_at_s"] >= timing["enqueued_at_s"] >= 0.0
            assert timing["queue_wait_s"] >= 0.0


class TestTelemetry:
    def test_service_counters_and_histograms(self, sj_solver):
        dataset, solver = sj_solver
        metrics = MetricsRegistry()
        with QueryService(solver, workers=1, metrics=metrics) as svc:
            svc.solve(_query_mix(dataset, 4))
        assert metrics.counters["service_queries"] == 4
        assert metrics.counters["queries"] == 4  # per-query snapshots merged
        assert metrics.histograms["queue_wait_ms"].total == 4
        assert metrics.histograms["service_ms"].total == 4
        assert metrics.counters.get("service_rejected_overload", 0) == 0

    def test_warmup_phase_paid_exactly_once(self, sj_solver):
        dataset, solver = sj_solver
        with QueryService(solver, workers=1, prewarm=("T1",)) as svc:
            svc.solve(_query_mix(dataset, 5))
            phases = svc.metrics.report()["phases"]
        assert phases["warmup"]["calls"] == 1
        assert phases["warmup"]["ms"] > 0.0

    def test_work_counters_aggregate(self, service, sj_solver):
        dataset, _ = sj_solver
        before = service.stats.as_dict()
        results = service.solve(_query_mix(dataset, 3))
        after = service.stats.as_dict()
        gained = after["lb_tests"] - before["lb_tests"]
        assert gained == sum(r.stats.lb_tests for r in results)

    def test_prometheus_exposition_parses(self, service):
        service.query(BatchQuery(source=2, category="T1", k=2))
        text = service.render_prom()
        samples = parse_prom(text, require_non_negative=False)
        assert samples[("kpj_service_queries_total", ())] >= 1.0
        assert ("kpj_queue_wait_ms_count", ()) in samples

    def test_describe_is_json_ready_status(self, service):
        import json

        status = service.describe()
        json.dumps(status)  # no unserialisable leftovers
        assert status["workers"] == 2
        assert status["max_pending"] == service.max_pending
        assert len(status["segments"]) == 3
        assert status["uptime_s"] >= 0.0
        assert "phases" in status["metrics"]

    def test_query_ids_are_minted(self, service):
        a = service.query(BatchQuery(source=1, category="T1", k=2))
        b = service.query(BatchQuery(source=2, category="T1", k=2))
        assert a.query_id and b.query_id and a.query_id != b.query_id


class TestBatchIntegration:
    def test_run_batch_engine_service(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 10)
        pooled = run_batch(solver, queries, workers=2)
        served = run_batch(solver, queries, workers=2, engine="service")
        assert _fingerprint(served) == _fingerprint(pooled)

    def test_solve_batch_engine_passthrough(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 6)
        sequential = solver.solve_batch(queries)
        served = solver.solve_batch(queries, workers=2, engine="service")
        assert _fingerprint(served) == _fingerprint(sequential)

    def test_unknown_engine_rejected(self, sj_solver):
        _, solver = sj_solver
        with pytest.raises(QueryError, match="engine"):
            run_batch(solver, [{"source": 0, "category": "T1"}], engine="bogus")

    def test_run_service_batch_aggregates_telemetry(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 8)
        stats, metrics = SearchStats(), MetricsRegistry()
        results = run_service_batch(
            solver, queries, workers=2, stats=stats, metrics=metrics
        )
        assert len(results) == len(queries)
        assert stats.lb_tests == sum(r.stats.lb_tests for r in results)
        assert metrics.counters["service_queries"] == len(queries)
        assert "warmup" in metrics.phases

    def test_run_service_batch_failure_keeps_sibling_results(self, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 4)
        queries.insert(2, BatchQuery(source=0, category="NOPE"))
        stats = SearchStats()
        with pytest.raises(QueryError, match="NOPE"):
            run_service_batch(solver, queries, workers=1, stats=stats)
        assert stats.lb_tests > 0  # completed siblings still merged

    def test_run_service_batch_against_running_service(self, service, sj_solver):
        dataset, solver = sj_solver
        queries = _query_mix(dataset, 5)
        results = run_service_batch(solver, queries, service=service)
        direct = [
            solver.top_k(q.source, category=q.category, k=q.k) for q in queries
        ]
        assert _fingerprint(results) == _fingerprint(direct)

    def test_empty_batch(self, sj_solver):
        _, solver = sj_solver
        assert run_service_batch(solver, []) == []


def test_no_segments_leaked_by_this_module():
    """Every service in this file shut down cleanly (leak check)."""
    # The module fixture is still running; only its segments may live.
    assert len(active_segments()) <= 3
