"""Request-coalescing correctness (satellite of the service tier).

Concurrent identical ``(category, k)`` submissions must trigger
exactly one explicit prepare op on the owning worker — observable in
the ``service_prepares`` / ``service_prepares_coalesced`` counters —
while every caller still gets the full, correct answer.  Distinct
prepare keys must never coalesce with each other.
"""

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.server.pool import BatchQuery
from repro.server.service import QueryService


@pytest.fixture(scope="module")
def sj():
    dataset = road_network("SJ")
    return dataset, KPJSolver(dataset.graph, dataset.categories, landmarks=4)


def _solver(dataset, **kwargs):
    kwargs.setdefault("landmarks", 4)
    return KPJSolver(dataset.graph, dataset.categories, **kwargs)


def _fingerprint(result):
    return tuple((p.nodes, p.length) for p in result.paths)


def test_identical_concurrent_prepares_coalesce(sj):
    dataset, reference = sj
    solver = _solver(dataset)
    with QueryService(solver, workers=1) as service:
        # Hold the worker busy so all N submissions are concurrently
        # pending; they queue behind the sleep on the single driver.
        blocker = service.sleep(0.3, worker=0)
        futures = [
            service.submit(BatchQuery(source=s, category="T2", k=4))
            for s in (1, 5, 9, 13, 17, 21)
        ]
        results = [f.result(timeout=60) for f in futures]
        blocker.result(timeout=60)
        counters = dict(service.metrics.counters)

    # Exactly one explicit prepare; the other five rode the warm entry.
    assert counters["service_prepares"] == 1
    assert counters["service_prepares_coalesced"] == 5
    assert counters["service_queries"] == 6

    # And all six answers are the full correct per-source results.
    for (source, result) in zip((1, 5, 9, 13, 17, 21), results):
        direct = reference.top_k(source, category="T2", k=4)
        assert _fingerprint(result) == _fingerprint(direct), source


def test_distinct_keys_do_not_coalesce(sj):
    dataset, _ = sj
    solver = _solver(dataset)
    with QueryService(solver, workers=1) as service:
        blocker = service.sleep(0.2, worker=0)
        futures = [
            service.submit(BatchQuery(source=s, category=cat, k=3))
            for s, cat in ((1, "T1"), (5, "T1"), (2, "T2"), (6, "T2"))
        ]
        for f in futures:
            assert f.result(timeout=60).paths
        blocker.result(timeout=60)
        counters = dict(service.metrics.counters)

    # One prepare per distinct category, one coalesced hit for each
    # repeat — never cross-key.
    assert counters["service_prepares"] == 2
    assert counters["service_prepares_coalesced"] == 2


def test_destination_set_keys_coalesce_by_set(sj):
    dataset, _ = sj
    solver = _solver(dataset)
    with QueryService(solver, workers=1) as service:
        blocker = service.sleep(0.2, worker=0)
        same = [
            service.submit(
                BatchQuery(source=s, destinations=(9, 17, 25), k=3)
            )
            for s in (1, 4)
        ]
        other = service.submit(
            BatchQuery(source=1, destinations=(9, 17), k=3)
        )
        for f in [*same, other]:
            assert f.result(timeout=60).paths
        blocker.result(timeout=60)
        counters = dict(service.metrics.counters)

    assert counters["service_prepares"] == 2  # the two distinct sets
    assert counters["service_prepares_coalesced"] == 1


def test_prewarmed_key_never_pays_a_prepare(sj):
    dataset, _ = sj
    solver = _solver(dataset)
    with QueryService(solver, workers=1, prewarm=("T1",)) as service:
        for s in (1, 5, 9):
            assert service.query(BatchQuery(source=s, category="T1")).paths
        counters = dict(service.metrics.counters)
    # The prewarm paid the prepare inside the warmup phase; no query
    # triggered an explicit prepare op.
    assert counters.get("service_prepares", 0) == 0
    assert counters["service_prepares_coalesced"] == 3


def test_warm_set_is_bounded_by_the_prepared_cache(sj):
    dataset, _ = sj
    solver = _solver(dataset, prepared_cache_size=1)
    with QueryService(solver, workers=1) as service:
        service.query(BatchQuery(source=1, category="T1"))
        service.query(BatchQuery(source=1, category="T2"))  # evicts T1
        service.query(BatchQuery(source=2, category="T1"))  # re-prepares
        counters = dict(service.metrics.counters)
    assert counters["service_prepares"] == 3
    assert counters.get("service_prepares_coalesced", 0) == 0


def test_coalescing_counters_in_prometheus_output(sj):
    dataset, _ = sj
    solver = _solver(dataset)
    with QueryService(solver, workers=1) as service:
        service.query(BatchQuery(source=1, category="T1"))
        service.query(BatchQuery(source=2, category="T1"))
        text = service.render_prom()
    assert "kpj_service_prepares_total 1" in text
    assert "kpj_service_prepares_coalesced_total 1" in text
