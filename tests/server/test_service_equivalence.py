"""Differential service-equivalence suite (pinned fuzz corpus).

Every committed corpus instance is replayed through a real
:class:`QueryService` — resident worker, shared-memory CSR, explicit
prepare op — and the answer is held to the same bar as the fuzz
harness's sequential matrix:

* the path set must be tie-admissibly correct against the brute-force
  oracle (`repro.fuzz.oracles` is the comparator, not a re-derivation);
* the answer must hash-match a sequential reference that mirrors the
  service discipline (explicit ``prepare`` then search), under every
  kernel — dict, flat, and native;
* the §3g work counters (`WORK_PARITY_FIELDS`) and the per-query
  metrics snapshot must tie out exactly with the sequential reference:
  shipping the search to a resident process over shared memory is not
  allowed to change how much work the search did.

GKPJ corpus cases are skipped for the same reason the oracle module
skips them on the batch path: a ``BatchQuery`` carries one source.
"""

import pytest

from repro.core.stats import WORK_PARITY_FIELDS
from repro.fuzz.corpus import seed_corpus_cases
from repro.fuzz.generators import sequence_hash
from repro.fuzz.oracles import (
    RunConfig,
    _check_answer,
    build_solver,
    oracle_expectation,
)
from repro.obs.metrics import MetricsRegistry
from repro.pathing.kernels import KERNELS
from repro.server.pool import BatchQuery, _execute
from repro.server.service import QueryService

CASES = [
    (name, case)
    for name, case in seed_corpus_cases()
    if case.kind != "gkpj"  # BatchQuery carries a single source
]


def _batch_query(case) -> BatchQuery:
    return BatchQuery(
        source=case.sources[0],
        category=case.category,
        destinations=(
            None if case.category is not None else case.destinations
        ),
        k=case.k,
        alpha=case.alpha,
    )


def _reference(case, kernel):
    """Sequential answer mirroring the service's serving discipline.

    The worker does an explicit ``prepare`` before the search (making
    the query's own internal prepare a warm hit), so the reference
    must too — otherwise the cache counters could never tie out.
    """
    solver = build_solver(case, kernel, cached=True)
    solver.metrics = MetricsRegistry()
    query = _batch_query(case)
    solver.prepare(category=query.category, destinations=query.destinations)
    return _execute(solver, query)


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("name,case", CASES, ids=[n for n, _ in CASES])
def test_service_answers_tie_out_with_sequential(name, case, kernel):
    expectation = oracle_expectation(case)
    reference = _reference(case, kernel)
    solver = build_solver(case, kernel, cached=True)
    with QueryService(solver, workers=1) as service:
        served = service.query(_batch_query(case))
        counters = dict(service.metrics.counters)

    # 1. Tie-admissible correctness against the brute-force oracle.
    config = RunConfig(served.algorithm, kernel, cached=True, batch=True)
    failures = _check_answer(case, expectation, config, list(served.paths))
    assert not failures, "\n".join(failures)

    # 2. Exact agreement with the sequential reference.
    assert sequence_hash(served.paths) == sequence_hash(reference.paths)

    # 3. Work parity: same search work, counter for counter.
    served_work = served.stats.as_dict()
    reference_work = reference.stats.as_dict()
    for field in WORK_PARITY_FIELDS:
        assert served_work[field] == reference_work[field], (
            f"{name}/{kernel}: {field} diverged "
            f"(service {served_work[field]} vs "
            f"sequential {reference_work[field]})"
        )

    # 4. The metrics snapshots tie out: one query, one explicit
    #    prepare, phase call counts identical to the reference.
    assert counters["service_queries"] == 1
    assert counters["service_prepares"] == 1
    assert counters.get("service_prepares_coalesced", 0) == 0
    served_metrics = served.metrics or {}
    reference_metrics = reference.metrics or {}
    assert served_metrics.get("counters", {}).get("queries") == 1
    for phase, (_, calls) in reference_metrics.get("phases", {}).items():
        got = served_metrics.get("phases", {}).get(phase)
        assert got is not None, f"{name}/{kernel}: phase {phase} missing"
        assert got[1] == calls, (
            f"{name}/{kernel}: phase {phase} ran {got[1]} times in the "
            f"service vs {calls} sequentially"
        )


@pytest.mark.parametrize("kernel", KERNELS)
def test_whole_corpus_through_one_service(kernel):
    """One resident service survives the entire corpus back to back.

    Each corpus instance needs its own graph, hence its own service;
    this test instead drives every *query shape* against a single
    service per case in sequence, asserting the aggregate counters add
    up — the service never needs a restart between instances.
    """
    total = 0
    for name, case in CASES[:6]:
        solver = build_solver(case, kernel, cached=True)
        with QueryService(solver, workers=1) as service:
            first = service.query(_batch_query(case))
            second = service.query(_batch_query(case))
            assert sequence_hash(first.paths) == sequence_hash(second.paths)
            assert service.metrics.counters["service_queries"] == 2
            # The repeat rides the worker's warm prepared entry.
            assert service.metrics.counters["service_prepares"] == 1
            assert (
                service.metrics.counters["service_prepares_coalesced"] == 1
            )
        total += 2
    assert total == 12
