"""Fault-injection suite for the resident-worker service.

Each failure mode is pinned to its exact user-visible error message
and its telemetry counter, so a behaviour change here is a deliberate
API change, not an accident:

* worker SIGKILL'd mid-query -> clean ``QueryError``, pool respawns
  the worker with the shared-memory state intact, later queries work;
* deadline exceeded -> ``DeadlineExceeded`` (a ``QueryError``
  subclass) + ``service_deadline_exceeded``;
* admission-queue overflow -> ``QueryError`` +
  ``service_rejected_overload``;
* shutdown -> zero shared-memory segments left behind.
"""

import os
import pickle
import signal
import time
from time import perf_counter

import pytest

from repro.core.kpj import KPJSolver
from repro.datasets.registry import road_network
from repro.exceptions import QueryError
from repro.server.pool import BatchQuery
from repro.server.service import (
    DeadlineExceeded,
    QueryService,
    _serve_query,
)
from repro.server.shared import active_segments


@pytest.fixture(scope="module")
def sj():
    dataset = road_network("SJ")
    return dataset, KPJSolver(dataset.graph, dataset.categories, landmarks=4)


@pytest.fixture()
def service(sj):
    _, solver = sj
    svc = QueryService(solver, workers=1, prewarm=("T1",))
    svc.start()
    yield svc
    svc.shutdown()


def _query(source=3, category="T1", k=3):
    return BatchQuery(source=source, category=category, k=k)


class TestWorkerDeath:
    def test_kill_mid_query_is_clean_error_and_respawn(self, service):
        (old_pid,) = service.worker_pids()
        segments_before = service.shared_segments()

        # Occupy the worker, then kill it while the op is in flight.
        inflight = service.sleep(1.0, worker=0)
        time.sleep(0.1)  # let the sleep op reach the worker
        os.kill(old_pid, signal.SIGKILL)

        with pytest.raises(
            QueryError,
            match=rf"resident worker 0 \(pid {old_pid}\) died mid-query; "
            rf"respawned",
        ):
            inflight.result(timeout=30)
        assert service.metrics.counters["service_worker_deaths"] == 1

        # The pool respawned a fresh process...
        (new_pid,) = service.worker_pids()
        assert new_pid != old_pid

        # ...which maps the *same* shared segments (nothing was
        # re-exported) and still holds the prewarmed category.
        info = service.ping(0)
        assert info["pid"] == new_pid
        assert info["segments"] == list(segments_before)
        assert info["csr_readonly"] is True
        assert service.shared_segments() == segments_before

        # And the service keeps answering correctly.
        _, solver = road_network("SJ"), service.solver
        result = service.query(_query())
        direct = solver.top_k(3, category="T1", k=3)
        assert [p.nodes for p in result.paths] == [
            p.nodes for p in direct.paths
        ]

    def test_queries_queued_behind_the_death_still_run(self, service):
        (old_pid,) = service.worker_pids()
        inflight = service.sleep(1.0, worker=0)
        queued = [service.submit(_query(source=s)) for s in (1, 5)]
        time.sleep(0.1)
        os.kill(old_pid, signal.SIGKILL)
        with pytest.raises(QueryError, match="died mid-query"):
            inflight.result(timeout=30)
        # Only the in-flight op fails; queued work lands on the
        # respawned worker.
        for future in queued:
            assert future.result(timeout=30).paths


class TestDeadlines:
    def test_queued_past_deadline_is_rejected_before_dispatch(self, service):
        service.sleep(0.4, worker=0)  # occupy the only worker
        doomed = service.submit(_query(), timeout_s=0.05)
        with pytest.raises(
            DeadlineExceeded,
            match=r"^deadline exceeded before dispatch: queued "
            r"\d+\.\d ms against a 50\.0 ms budget$",
        ):
            doomed.result(timeout=30)
        assert service.metrics.counters["service_deadline_exceeded"] == 1

    def test_worker_side_boundary_check_is_pinned(self, sj):
        # The in-worker half, exercised directly: a deadline that
        # lapses after dispatch is caught at the next phase boundary.
        _, solver = sj
        with pytest.raises(
            DeadlineExceeded,
            match=r"^deadline exceeded at the prepare phase boundary "
            r"\(\d+\.\d ms past budget\)$",
        ):
            _serve_query(solver, _query(), deadline=perf_counter() - 0.01)

    def test_deadline_error_is_a_picklable_query_error(self):
        # It crosses the worker pipe, so it must survive pickling and
        # still be catchable as the public QueryError.
        exc = DeadlineExceeded("deadline exceeded at the search phase boundary")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, QueryError)
        assert str(clone) == str(exc)

    def test_default_timeout_applies_to_every_query(self, sj):
        _, solver = sj
        with QueryService(
            solver, workers=1, default_timeout_s=0.02
        ) as svc:
            svc.sleep(0.3, worker=0)
            with pytest.raises(DeadlineExceeded):
                svc.query(_query())
            assert svc.metrics.counters["service_deadline_exceeded"] == 1

    def test_generous_deadline_does_not_fire(self, service):
        result = service.query(_query(), timeout_s=30.0)
        assert result.paths
        assert (
            service.metrics.counters.get("service_deadline_exceeded", 0) == 0
        )


class TestOverflow:
    def test_admission_bound_sheds_with_pinned_error(self, sj):
        _, solver = sj
        with QueryService(solver, workers=1, max_pending=2) as svc:
            svc.sleep(0.4, worker=0)  # occupies one pending slot
            accepted = svc.submit(_query())
            with pytest.raises(
                QueryError,
                match=r"^service overloaded: 2 queries pending "
                r"\(max_pending=2\)$",
            ):
                svc.query(_query(source=7))
            assert svc.metrics.counters["service_rejected_overload"] == 1
            # The shed request cost nothing; admitted work completes.
            assert accepted.result(timeout=30).paths

    def test_slots_free_up_as_queries_finish(self, sj):
        _, solver = sj
        with QueryService(solver, workers=1, max_pending=1) as svc:
            svc.query(_query())  # fills and frees the single slot
            assert svc.query(_query(source=9)).paths
            assert (
                svc.metrics.counters.get("service_rejected_overload", 0) == 0
            )


class TestShutdownHygiene:
    def test_no_segments_survive_shutdown(self, sj):
        _, solver = sj
        svc = QueryService(solver, workers=2)
        svc.start()
        segments = svc.shared_segments()
        pids = svc.worker_pids()
        assert set(segments) <= set(active_segments())
        svc.shutdown()
        assert not set(segments) & set(active_segments())
        # Workers are gone too.
        deadline = time.time() + 10
        while time.time() < deadline:
            alive = [pid for pid in pids if _pid_alive(pid)]
            if not alive:
                break
            time.sleep(0.05)
        assert not alive

    def test_no_segments_survive_a_crashed_worker_either(self, sj):
        _, solver = sj
        svc = QueryService(solver, workers=1)
        svc.start()
        segments = svc.shared_segments()
        inflight = svc.sleep(0.5, worker=0)
        time.sleep(0.1)
        os.kill(svc.worker_pids()[0], signal.SIGKILL)
        with pytest.raises(QueryError, match="died mid-query"):
            inflight.result(timeout=30)
        svc.shutdown()
        assert not set(segments) & set(active_segments())


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other owner
        return True
    return True
