"""Shared-memory CSR residency (`repro.server.shared`).

The lifecycle rules under test are the ones the module docstring
spells out: the exporter owns unlinking, attachers map read-only and
never unlink, and after `unlink()` no segment with the service prefix
survives in `/dev/shm` (the leak check CI's `service-smoke` job runs
against a real service).
"""

import numpy as np
import pytest

from repro.datasets.registry import road_network
from repro.exceptions import GraphError
from repro.graph.csr import shared_csr
from repro.server.shared import SharedCSR, SharedCSRLayout, active_segments


@pytest.fixture()
def sj_csr():
    dataset = road_network("SJ")
    return shared_csr(dataset.graph)


class TestExport:
    def test_roundtrip_preserves_arrays(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        try:
            a, b, c = sj_csr.typed_arrays()
            np.testing.assert_array_equal(shared.graph.indptr, a)
            np.testing.assert_array_equal(shared.graph.indices, b)
            np.testing.assert_array_equal(shared.graph.weights, c)
            assert shared.graph.n == sj_csr.n
            assert shared.graph.m == sj_csr.m
        finally:
            shared.unlink()

    def test_views_are_read_only(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        try:
            for view in (
                shared.graph.indptr, shared.graph.indices, shared.graph.weights
            ):
                assert not view.flags.writeable
                with pytest.raises(ValueError, match="read-only"):
                    view[0] = 0
        finally:
            shared.unlink()

    def test_segments_visible_under_prefix(self, sj_csr):
        shared = SharedCSR.export(sj_csr, prefix="kpjtest")
        try:
            live = active_segments("kpjtest")
            assert set(shared.segment_names) <= set(live)
            assert len(shared.segment_names) == 3
            for part in ("indptr", "indices", "weights"):
                assert any(name.endswith(part) for name in shared.segment_names)
        finally:
            shared.unlink()
        assert active_segments("kpjtest") == []

    def test_two_exports_get_distinct_names(self, sj_csr):
        first = SharedCSR.export(sj_csr)
        second = SharedCSR.export(sj_csr)
        try:
            assert not set(first.segment_names) & set(second.segment_names)
        finally:
            first.unlink()
            second.unlink()


class TestAttach:
    def test_attacher_sees_the_same_graph(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        try:
            attached = SharedCSR.attach(shared.layout)
            np.testing.assert_array_equal(
                attached.graph.weights, shared.graph.weights
            )
            assert not attached.graph.indices.flags.writeable
            attached.close()
        finally:
            shared.unlink()

    def test_attacher_never_unlinks(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        try:
            attached = SharedCSR.attach(shared.layout)
            attached.unlink()  # non-owner: must be a no-op
            attached.close()
            # The owner's segments are still there for a second attach.
            again = SharedCSR.attach(shared.layout)
            again.close()
        finally:
            shared.unlink()

    def test_attach_after_unlink_is_clean_error(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        layout = shared.layout
        shared.unlink()
        with pytest.raises(GraphError, match="gone"):
            SharedCSR.attach(layout)

    def test_attach_unknown_layout_is_clean_error(self):
        layout = SharedCSRLayout(
            names=("kpj_nope_a", "kpj_nope_b", "kpj_nope_c"), n=1, m=0
        )
        with pytest.raises(GraphError, match="gone"):
            SharedCSR.attach(layout)


class TestLifecycle:
    def test_unlink_is_idempotent(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        shared.unlink()
        shared.unlink()

    def test_attacher_close_leaves_owner_intact(self, sj_csr):
        shared = SharedCSR.export(sj_csr)
        try:
            attached = SharedCSR.attach(shared.layout)
            attached.close()  # done with the attached views
            # The owner's mapping and the named segments are unaffected.
            assert shared.graph.indptr[0] == 0
            assert set(shared.segment_names) <= set(active_segments())
        finally:
            shared.unlink()

    def test_no_segments_leak_from_this_module(self):
        assert active_segments("kpjtest") == []
