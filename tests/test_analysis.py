"""Unit tests for graph/result analytics."""

import pytest

from repro.analysis import (
    DistanceSample,
    degree_statistics,
    node_frequencies,
    path_diversity,
    sample_distance_distribution,
)
from repro.core.result import Path
from repro.graph.digraph import DiGraph


class TestDistanceSample:
    def test_percentile_of(self):
        sample = DistanceSample([1.0, 2.0, 3.0, 4.0])
        assert sample.percentile_of(0.5) == 0.0
        assert sample.percentile_of(2.0) == 50.0
        assert sample.percentile_of(10.0) == 100.0

    def test_quantile(self):
        sample = DistanceSample([1.0, 2.0, 3.0, 4.0])
        assert sample.quantile(0.0) == 1.0
        assert sample.quantile(0.5) == 3.0
        assert sample.quantile(1.0) == 4.0

    def test_quantile_validation(self):
        sample = DistanceSample([1.0])
        with pytest.raises(ValueError):
            sample.quantile(1.5)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            DistanceSample([]).percentile_of(1.0)

    def test_sampling_on_line_graph(self, line_graph):
        sample = sample_distance_distribution(line_graph, num_sources=5, seed=0)
        # 5 sources x 5 finite distances each.
        assert len(sample) == 25
        assert sample.percentile_of(4.0) == 100.0

    def test_deterministic(self, line_graph):
        a = sample_distance_distribution(line_graph, num_sources=3, seed=7)
        b = sample_distance_distribution(line_graph, num_sources=3, seed=7)
        assert len(a) == len(b)
        assert a.quantile(0.5) == b.quantile(0.5)


class TestPathDiversity:
    def test_identical_paths_zero(self):
        p = Path(2.0, (0, 1, 2))
        assert path_diversity([p, p]) == 0.0

    def test_disjoint_paths_one(self):
        a = Path(2.0, (0, 1, 5))
        b = Path(2.0, (0, 2, 5))
        # Edges {(0,1),(1,5)} vs {(0,2),(2,5)}: fully disjoint.
        assert path_diversity([a, b]) == 1.0

    def test_partial_overlap(self):
        a = Path(3.0, (0, 1, 2, 3))
        b = Path(3.0, (0, 1, 4, 3))
        # Shared edge (0,1); union of 5 edges -> Jaccard distance 0.8.
        assert path_diversity([a, b]) == pytest.approx(0.8)

    def test_fewer_than_two_paths(self):
        assert path_diversity([]) == 0.0
        assert path_diversity([Path(1.0, (0, 1))]) == 0.0

    def test_bounded_zero_one(self):
        paths = [
            Path(2.0, (0, 1, 2)),
            Path(2.0, (0, 3, 2)),
            Path(3.0, (0, 1, 3, 2)),
        ]
        assert 0.0 <= path_diversity(paths) <= 1.0


class TestNodeFrequencies:
    def test_counts_and_order(self):
        paths = [Path(2.0, (0, 1, 2)), Path(2.0, (0, 1, 3)), Path(1.0, (0, 3))]
        ranking = node_frequencies(paths)
        assert ranking[0] == (0, 3)
        assert (1, 2) in ranking
        assert (3, 2) in ranking

    def test_exclusion(self):
        paths = [Path(2.0, (0, 1, 2))]
        ranking = node_frequencies(paths, exclude=[0, 2])
        assert ranking == [(1, 1)]

    def test_node_counted_once_per_path(self):
        # Even if a walk revisits a node, count it once per path.
        paths = [Path(4.0, (0, 1, 0, 2))]
        ranking = dict(node_frequencies(paths))
        assert ranking[0] == 1


class TestDegreeStatistics:
    def test_line_graph(self, line_graph):
        stats = degree_statistics(line_graph)
        assert stats["min"] == 1.0
        assert stats["max"] == 2.0
        assert stats["mean"] == pytest.approx(8 / 5)

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            degree_statistics(DiGraph(0))
