"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.pathing.kernels import KERNELS


class TestParser:
    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "--dataset", "SJ", "--source", "3", "--category", "T2"]
        )
        assert args.command == "query"
        assert args.k == 10
        assert args.algorithm == "iter-bound-spti"

    def test_bench_args(self):
        args = build_parser().parse_args(["bench", "--figure", "fig9"])
        assert args.command == "bench"
        assert args.queries == 3

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "MARS", "--source", "0", "--category", "X"]
            )

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--figure", "fig99"])


class TestCommands:
    def test_datasets_lists_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("SJ", "CAL", "USA"):
            assert name in out

    def test_query_prints_paths(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "10",
                "--category",
                "T2",
                "--k",
                "3",
                "--landmarks",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 paths" in out
        assert "length" in out

    def test_query_bad_source(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "999999",
                "--category",
                "T2",
            ]
        )
        assert code == 2
        assert "source must be" in capsys.readouterr().err

    def test_bench_prints_figure(self, capsys):
        assert main(["bench", "--figure", "fig12b", "--queries", "1"]) == 0
        out = capsys.readouterr().out
        assert "IterBoundI" in out

    def test_compare_verifies_agreement(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "SJ",
                "--source",
                "50",
                "--category",
                "T2",
                "--k",
                "5",
                "--landmarks",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all algorithms agree" in out
        assert "da-spt" in out

    def test_query_json_output(self, capsys):
        import json

        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "10",
                "--category",
                "T2",
                "--k",
                "2",
                "--landmarks",
                "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "iter-bound-spti"
        assert len(payload["paths"]) == 2
        assert payload["paths"][0]["length"] <= payload["paths"][1]["length"]

    def test_compare_bad_source(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "SJ",
                "--source",
                "-5",
                "--category",
                "T2",
            ]
        )
        assert code == 2


class TestKernelAndStatsFlags:
    def test_query_flat_kernel_with_stats(self, capsys):
        code = main(
            [
                "query", "--dataset", "SJ", "--source", "10",
                "--category", "T2", "--k", "2", "--landmarks", "4",
                "--kernel", "flat", "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flat kernel" in out
        assert "stats:" in out
        assert "flat_kernel_calls" in out
        assert "prepared_cache_misses" in out

    def test_query_kernels_agree(self, capsys):
        outputs = []
        for kernel in KERNELS:
            assert main(
                [
                    "query", "--dataset", "SJ", "--source", "10",
                    "--category", "T2", "--k", "3", "--landmarks", "4",
                    "--kernel", kernel, "--json",
                ]
            ) == 0
            import json

            payload = json.loads(capsys.readouterr().out)
            outputs.append([p["length"] for p in payload["paths"]])
        assert outputs[0] == outputs[1]

    def test_invalid_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "SJ", "--source", "1",
                 "--category", "T2", "--kernel", "gpu"]
            )


class TestBatchCommand:
    def test_batch_explicit_sources(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "3,10,25", "--k", "2", "--landmarks", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 queries" in out
        assert "queries/s" in out

    def test_batch_random_sources_with_workers_and_stats(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--random-sources", "6", "--seed", "1", "--workers", "2",
                "--kernel", "flat", "--stats", "--landmarks", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert "prepared_cache_hits" in out

    def test_batch_json_payload(self, capsys):
        import json

        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "3,10", "--k", "2", "--landmarks", "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 1
        assert len(payload["results"]) == 2
        assert payload["results"][0]["source"] == 3
        assert payload["queries_per_s"] > 0

    def test_batch_bad_sources(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "3,abc",
            ]
        )
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_batch_out_of_range_source(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "999999",
            ]
        )
        assert code == 2
        assert "must be in" in capsys.readouterr().err

    def test_batch_requires_source_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "--dataset", "SJ", "--category", "T2"]
            )

class TestMetricsFlags:
    def test_query_metrics_text(self, capsys):
        code = main(
            [
                "query", "--dataset", "SJ", "--source", "10",
                "--category", "T2", "--k", "2", "--landmarks", "4",
                "--metrics", "text",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "landmark_build" in out
        assert "comp_sp" in out
        assert "elapsed" in out

    def test_query_metrics_json_is_one_document(self, capsys):
        import json

        code = main(
            [
                "query", "--dataset", "SJ", "--source", "10",
                "--category", "T2", "--k", "2", "--landmarks", "4",
                "--metrics", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["result"]["paths"]) == 2
        assert payload["result"]["elapsed_ms"] > 0
        assert "prepare" in payload["metrics"]["phases"]
        assert payload["metrics"]["counters"]["queries"] == 1

    def test_batch_metrics_json_has_latency_percentiles(self, capsys):
        import json

        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "1,5,9,13", "--k", "3", "--landmarks", "4",
                "--metrics", "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["queries"] == 4
        lat = payload["latency_ms"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"]
        assert payload["metrics"]["counters"]["queries"] == 4
        assert "landmark_build" in payload["metrics"]["phases"]

    def test_batch_metrics_text_with_workers(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "1,5,9,13", "--k", "3", "--landmarks", "4",
                "--workers", "2", "--metrics", "text",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "queries/s" in out
        assert "warmup" in out  # the pre-fork phase shows up
        assert "query_latency_ms" in out

    def test_stats_output_skips_zero_counters(self, capsys):
        code = main(
            [
                "query", "--dataset", "SJ", "--source", "10",
                "--category", "T2", "--k", "2", "--landmarks", "4",
                "--kernel", "flat", "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flat_kernel_calls" in out
        assert "dict_kernel_calls" not in out  # zero under the flat kernel


class TestFuzzCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz"])
        assert args.command == "fuzz"
        assert args.seed == 0
        assert args.cases == 200
        assert args.shrink is True
        assert args.kernels is None
        assert args.corpus_dir == "fuzz/corpus"

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--seed", "7", "--cases", "50", "--time-budget", "1.5",
             "--kernel", "dict", "--kernel", "flat", "--no-shrink"]
        )
        assert args.seed == 7
        assert args.time_budget == 1.5
        assert args.kernels == ["dict", "flat"]
        assert args.shrink is False

    def test_invalid_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--kernel", "gpu"])

    def test_small_run_is_clean(self, capsys, tmp_path):
        code = main(
            ["fuzz", "--seed", "0", "--cases", "15", "--kernel", "dict",
             "--corpus-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all configurations agree" in out
        assert list(tmp_path.iterdir()) == []

    def test_replay_corpus_file(self, capsys):
        import pathlib

        corpus = pathlib.Path(__file__).parent.parent / "fuzz" / "corpus"
        path = str(sorted(corpus.glob("*.json"))[0])
        assert main(["fuzz", "--replay", path, "--kernel", "dict"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_replay_missing_file(self, capsys):
        code = main(["fuzz", "--replay", "/no/such/repro.json"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestMetricsCommand:
    def workload(self, tmp_path, **overrides):
        import json

        spec = {
            "dataset": "SJ",
            "landmarks": 4,
            "queries": [
                {"source": 1, "category": "T2", "k": 3},
                {"source": 5, "category": "T2", "k": 3},
                {"source": 9, "category": "T1", "k": 2},
            ],
        }
        spec.update(overrides)
        path = tmp_path / "workload.json"
        path.write_text(json.dumps(spec))
        return str(path)

    def test_exposition_parses_cleanly(self, capsys, tmp_path):
        from repro.obs.metrics import parse_prom

        code = main(["metrics", "--workload", self.workload(tmp_path)])
        assert code == 0
        samples = parse_prom(capsys.readouterr().out)
        assert samples[("kpj_queries_total", ())] == 3
        assert ("kpj_phase_seconds_total", (("phase", "comp_sp"),)) in samples
        assert ("kpj_phase_seconds_total", (("phase", "landmark_build"),)) in samples
        # SearchStats counters folded into the same document.
        assert samples[("kpj_nodes_settled_total", ())] > 0

    def test_exposition_with_workers_includes_warmup(self, capsys, tmp_path):
        from repro.obs.metrics import parse_prom

        path = self.workload(tmp_path, workers=2, kernel="flat")
        assert main(["metrics", "--workload", path]) == 0
        samples = parse_prom(capsys.readouterr().out)
        assert ("kpj_phase_seconds_total", (("phase", "warmup"),)) in samples
        assert samples[("kpj_queries_total", ())] == 3

    def test_prefix_flag(self, capsys, tmp_path):
        from repro.obs.metrics import parse_prom

        path = self.workload(tmp_path)
        assert main(["metrics", "--workload", path, "--prefix", "repro"]) == 0
        samples = parse_prom(capsys.readouterr().out)
        assert ("repro_queries_total", ()) in samples

    def test_missing_workload_file(self, capsys):
        assert main(["metrics", "--workload", "/no/such/file.json"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_dataset_rejected(self, capsys, tmp_path):
        path = self.workload(tmp_path, dataset="NOPE")
        assert main(["metrics", "--workload", path]) == 2
        assert "dataset" in capsys.readouterr().err

    def test_empty_queries_rejected(self, capsys, tmp_path):
        path = self.workload(tmp_path, queries=[])
        assert main(["metrics", "--workload", path]) == 2
        assert "no queries" in capsys.readouterr().err


class TestObservabilityFlags:
    """--log/--slow-ms/--profile/--memory, trace --folded, kpj report."""

    QUERY = [
        "query", "--dataset", "SJ", "--source", "10", "--category", "T2",
        "--k", "3", "--landmarks", "4",
    ]

    def test_parser_defaults(self):
        for head in (self.QUERY, ["batch", "--dataset", "SJ", "--category",
                                  "T2", "--sources", "1"]):
            args = build_parser().parse_args(head)
            assert args.log is None and args.slow_ms is None
            assert args.profile is None and args.memory is False

    def test_slow_ms_requires_log(self, capsys):
        assert main(self.QUERY + ["--slow-ms", "5"]) == 2
        assert "--slow-ms requires --log" in capsys.readouterr().err

    def test_query_log_round_trips(self, capsys, tmp_path):
        from repro.obs.log import parse_query_log

        log = tmp_path / "q.jsonl"
        assert main(self.QUERY + ["--log", str(log)]) == 0
        (event,) = parse_query_log(log.read_text())
        assert event["kernel"] == "dict"
        assert event["k"] == 3
        assert event["paths"] == 3
        assert "slow" not in event

    def test_slow_dump_written_and_loadable(self, capsys, tmp_path):
        from repro.obs.log import load_slow_query, parse_query_log

        log = tmp_path / "q.jsonl"
        assert main(self.QUERY + ["--log", str(log), "--slow-ms", "0"]) == 0
        (event,) = parse_query_log(log.read_text())
        assert event["slow"] is True
        dump = load_slow_query(event["slow_dump"])
        # --slow-ms implies metrics + tracing for a useful dump.
        assert dump.metrics is not None and dump.trace is not None

    def test_memory_prints_byte_accounting(self, capsys):
        assert main(self.QUERY + ["--memory"]) == 0
        out = capsys.readouterr().out
        assert "memory:" in out
        assert "process_peak_rss_bytes" in out
        assert "mem_search_alloc_bytes" in out

    def test_profile_writes_loadable_pstats(self, capsys, tmp_path):
        import pstats

        prof = tmp_path / "q.prof"
        assert main(self.QUERY + ["--profile", str(prof)]) == 0
        assert "profile ->" in capsys.readouterr().err
        stats = pstats.Stats(str(prof))
        assert stats.total_calls > 0

    def test_batch_logs_one_event_per_query(self, capsys, tmp_path):
        from repro.obs.log import parse_query_log

        log = tmp_path / "b.jsonl"
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "1,5,9", "--k", "3", "--landmarks", "4",
                "--workers", "2", "--log", str(log),
            ]
        )
        assert code == 0
        events = parse_query_log(log.read_text())
        assert len(events) == 3
        assert len({e["query_id"] for e in events}) == 3

    def test_trace_folded_output(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        folded = tmp_path / "t.folded"
        code = main(
            [
                "trace", "--dataset", "SJ", "--source", "10", "--category",
                "T2", "--k", "3", "--landmarks", "4",
                "--out", str(out), "--folded", str(folded),
            ]
        )
        assert code == 0
        assert "folded stacks ->" in capsys.readouterr().out
        for line in folded.read_text().splitlines():
            stack, value = line.rsplit(" ", 1)
            assert stack and int(value) >= 1


class TestReportCommand:
    def test_renders_committed_trajectory(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Perf trajectory report")
        assert "### Work counters" in out

    def test_out_flag_writes_file(self, capsys, tmp_path):
        dest = tmp_path / "report.md"
        assert main(["report", "--out", str(dest)]) == 0
        assert "report ->" in capsys.readouterr().out
        assert dest.read_text().startswith("# Perf trajectory report")

    def test_missing_trajectory_file(self, capsys):
        assert main(["report", "--trajectory", "/no/such.json"]) == 2
        assert "nothing to report" in capsys.readouterr().err

    def test_non_list_trajectory_rejected(self, capsys, tmp_path):
        bogus = tmp_path / "t.json"
        bogus.write_text('{"not": "a list"}')
        assert main(["report", "--trajectory", str(bogus)]) == 2
        assert "not a list" in capsys.readouterr().err

    def test_missing_loadtest_trajectory(self, capsys):
        assert main(["report", "--loadtest", "/no/such.json"]) == 2
        err = capsys.readouterr().err
        assert "nothing to report" in err and "loadtest" in err

    def test_empty_loadtest_trajectory_is_clean(self, capsys, tmp_path):
        blank = tmp_path / "lt.json"
        blank.write_text("\n")
        assert main(["report", "--loadtest", str(blank)]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_empty_trajectory_file_is_clean(self, capsys, tmp_path):
        blank = tmp_path / "t.json"
        blank.write_text("")
        assert main(["report", "--trajectory", str(blank)]) == 0
        assert "is empty" in capsys.readouterr().out


def _write_tiny_spec(tmp_path, **overrides):
    import json

    data = {
        "name": "cli-tiny",
        "dataset": "SJ",
        "categories": ["T1", "T2"],
        "target_qps": 400.0,
        "queries": 8,
        "workers": 1,
        "seed": 5,
        "kernel": "dict",
        "landmarks": 2,
        "k": {"kind": "fixed", "value": 2},
        "slo": {"p99_ms": 30000.0, "min_qps": 1.0},
    }
    data.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(data))
    return path


class TestLoadtestCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["loadtest", "--spec", "w.json"])
        assert args.command == "loadtest"
        assert args.out is None
        assert args.baseline is None
        assert args.gate is True
        assert args.json is False

    def test_replay_writes_entry_and_passes_gate(self, capsys, tmp_path):
        import json

        spec = _write_tiny_spec(tmp_path)
        out = tmp_path / "BENCH_loadtest.json"
        assert main(["loadtest", "--spec", str(spec), "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "slo gate OK" in captured.out
        assert "queue wait" in captured.out
        entries = json.loads(out.read_text())
        assert len(entries) == 1
        assert entries[0]["completed"] == 8

    def test_second_run_gates_against_recorded_baseline(self, capsys, tmp_path):
        spec = _write_tiny_spec(
            tmp_path, slo={"p99_ms": 30000.0, "regression_factor": 100.0}
        )
        out = tmp_path / "BENCH_loadtest.json"
        assert main(["loadtest", "--spec", str(spec), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["loadtest", "--spec", str(spec), "--out", str(out)]) == 0
        assert "slo gate OK vs baseline" in capsys.readouterr().out

    def test_violated_p99_bound_fails_nonzero(self, capsys, tmp_path):
        # No real replay finishes under a microsecond: the declared
        # p99 bound is deliberately impossible, so the gate must fail.
        spec = _write_tiny_spec(tmp_path, slo={"p99_ms": 0.001})
        assert main(["loadtest", "--spec", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "SLO GATE FAILED" in err
        assert "p99" in err

    def test_no_gate_flag_skips_slo(self, capsys, tmp_path):
        spec = _write_tiny_spec(tmp_path, slo={"p99_ms": 0.001})
        assert main(["loadtest", "--spec", str(spec), "--no-gate"]) == 0
        assert "SLO GATE FAILED" not in capsys.readouterr().err

    def test_json_output_is_the_entry(self, capsys, tmp_path):
        import json

        spec = _write_tiny_spec(tmp_path)
        assert main(["loadtest", "--spec", str(spec), "--json"]) == 0
        entry = json.loads(capsys.readouterr().out.rsplit("slo gate OK")[0])
        assert entry["queries"] == 8
        assert entry["latency_ms"]["p99"] is not None

    def test_bad_spec_exits_two(self, capsys, tmp_path):
        spec = _write_tiny_spec(tmp_path, target_qps=0)
        assert main(["loadtest", "--spec", str(spec)]) == 2
        assert "bad workload spec" in capsys.readouterr().err

    def test_report_renders_loadtest_trajectory(self, capsys, tmp_path):
        spec = _write_tiny_spec(tmp_path)
        out = tmp_path / "BENCH_loadtest.json"
        assert main(["loadtest", "--spec", str(spec), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", "--loadtest", str(out)]) == 0
        doc = capsys.readouterr().out
        assert doc.startswith("# Load-test trajectory report")
        assert "cli-tiny" in doc
        assert "Queue wait vs service time" in doc
