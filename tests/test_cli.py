"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "--dataset", "SJ", "--source", "3", "--category", "T2"]
        )
        assert args.command == "query"
        assert args.k == 10
        assert args.algorithm == "iter-bound-spti"

    def test_bench_args(self):
        args = build_parser().parse_args(["bench", "--figure", "fig9"])
        assert args.command == "bench"
        assert args.queries == 3

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "MARS", "--source", "0", "--category", "X"]
            )

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--figure", "fig99"])


class TestCommands:
    def test_datasets_lists_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("SJ", "CAL", "USA"):
            assert name in out

    def test_query_prints_paths(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "10",
                "--category",
                "T2",
                "--k",
                "3",
                "--landmarks",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 paths" in out
        assert "length" in out

    def test_query_bad_source(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "999999",
                "--category",
                "T2",
            ]
        )
        assert code == 2
        assert "source must be" in capsys.readouterr().err

    def test_bench_prints_figure(self, capsys):
        assert main(["bench", "--figure", "fig12b", "--queries", "1"]) == 0
        out = capsys.readouterr().out
        assert "IterBoundI" in out

    def test_compare_verifies_agreement(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "SJ",
                "--source",
                "50",
                "--category",
                "T2",
                "--k",
                "5",
                "--landmarks",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all algorithms agree" in out
        assert "da-spt" in out

    def test_query_json_output(self, capsys):
        import json

        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "10",
                "--category",
                "T2",
                "--k",
                "2",
                "--landmarks",
                "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "iter-bound-spti"
        assert len(payload["paths"]) == 2
        assert payload["paths"][0]["length"] <= payload["paths"][1]["length"]

    def test_compare_bad_source(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "SJ",
                "--source",
                "-5",
                "--category",
                "T2",
            ]
        )
        assert code == 2


class TestKernelAndStatsFlags:
    def test_query_flat_kernel_with_stats(self, capsys):
        code = main(
            [
                "query", "--dataset", "SJ", "--source", "10",
                "--category", "T2", "--k", "2", "--landmarks", "4",
                "--kernel", "flat", "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "flat kernel" in out
        assert "stats:" in out
        assert "flat_kernel_calls" in out
        assert "prepared_cache_misses" in out

    def test_query_kernels_agree(self, capsys):
        outputs = []
        for kernel in ("dict", "flat"):
            assert main(
                [
                    "query", "--dataset", "SJ", "--source", "10",
                    "--category", "T2", "--k", "3", "--landmarks", "4",
                    "--kernel", kernel, "--json",
                ]
            ) == 0
            import json

            payload = json.loads(capsys.readouterr().out)
            outputs.append([p["length"] for p in payload["paths"]])
        assert outputs[0] == outputs[1]

    def test_invalid_kernel_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "SJ", "--source", "1",
                 "--category", "T2", "--kernel", "gpu"]
            )


class TestBatchCommand:
    def test_batch_explicit_sources(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "3,10,25", "--k", "2", "--landmarks", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 queries" in out
        assert "queries/s" in out

    def test_batch_random_sources_with_workers_and_stats(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--random-sources", "6", "--seed", "1", "--workers", "2",
                "--kernel", "flat", "--stats", "--landmarks", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert "prepared_cache_hits" in out

    def test_batch_json_payload(self, capsys):
        import json

        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "3,10", "--k", "2", "--landmarks", "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workers"] == 1
        assert len(payload["results"]) == 2
        assert payload["results"][0]["source"] == 3
        assert payload["queries_per_s"] > 0

    def test_batch_bad_sources(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "3,abc",
            ]
        )
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_batch_out_of_range_source(self, capsys):
        code = main(
            [
                "batch", "--dataset", "SJ", "--category", "T2",
                "--sources", "999999",
            ]
        )
        assert code == 2
        assert "must be in" in capsys.readouterr().err

    def test_batch_requires_source_spec(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["batch", "--dataset", "SJ", "--category", "T2"]
            )
