"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "--dataset", "SJ", "--source", "3", "--category", "T2"]
        )
        assert args.command == "query"
        assert args.k == 10
        assert args.algorithm == "iter-bound-spti"

    def test_bench_args(self):
        args = build_parser().parse_args(["bench", "--figure", "fig9"])
        assert args.command == "bench"
        assert args.queries == 3

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--dataset", "MARS", "--source", "0", "--category", "X"]
            )

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--figure", "fig99"])


class TestCommands:
    def test_datasets_lists_table(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("SJ", "CAL", "USA"):
            assert name in out

    def test_query_prints_paths(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "10",
                "--category",
                "T2",
                "--k",
                "3",
                "--landmarks",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top-3 paths" in out
        assert "length" in out

    def test_query_bad_source(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "999999",
                "--category",
                "T2",
            ]
        )
        assert code == 2
        assert "source must be" in capsys.readouterr().err

    def test_bench_prints_figure(self, capsys):
        assert main(["bench", "--figure", "fig12b", "--queries", "1"]) == 0
        out = capsys.readouterr().out
        assert "IterBoundI" in out

    def test_compare_verifies_agreement(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "SJ",
                "--source",
                "50",
                "--category",
                "T2",
                "--k",
                "5",
                "--landmarks",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all algorithms agree" in out
        assert "da-spt" in out

    def test_query_json_output(self, capsys):
        import json

        code = main(
            [
                "query",
                "--dataset",
                "SJ",
                "--source",
                "10",
                "--category",
                "T2",
                "--k",
                "2",
                "--landmarks",
                "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "iter-bound-spti"
        assert len(payload["paths"]) == 2
        assert payload["paths"][0]["length"] <= payload["paths"][1]["length"]

    def test_compare_bad_source(self, capsys):
        code = main(
            [
                "compare",
                "--dataset",
                "SJ",
                "--source",
                "-5",
                "--category",
                "T2",
            ]
        )
        assert code == 2
