"""CLI tracing surfaces: kpj trace, query --trace, explain --tree,
metrics --trace-out."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs.tracing import validate_chrome_trace


class TestTraceCommand:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--dataset", "SJ",
                "--source", "3",
                "--category", "T2",
                "--k", "5",
                "--landmarks", "4",
                "--out", str(out),
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        events = validate_chrome_trace(doc)
        assert events > 0
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"query", "search", "iter_bound", "test_lb"} <= names
        assert f"-> {out}" in capsys.readouterr().out

    def test_tree_flag_prints_report(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "--dataset", "SJ",
                "--source", "3",
                "--category", "T2",
                "--landmarks", "4",
                "--out", str(tmp_path / "t.json"),
                "--tree",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spans:" in out
        assert "subspace tree" in out

    def test_bad_source_rejected(self, tmp_path, capsys):
        code = main(
            [
                "trace",
                "--dataset", "SJ",
                "--source", "-1",
                "--category", "T2",
                "--out", str(tmp_path / "t.json"),
            ]
        )
        assert code == 2
        assert "source must be" in capsys.readouterr().err


class TestQueryTraceFlag:
    def test_prints_span_tree_and_report(self, capsys):
        code = main(
            [
                "query",
                "--dataset", "SJ",
                "--source", "3",
                "--category", "T2",
                "--k", "4",
                "--landmarks", "4",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "length" in out  # the paths themselves still print
        assert "spans:" in out
        assert "iter_bound" in out
        assert "subspace tree" in out


class TestExplainTreeFlag:
    def test_prints_per_depth_table(self, capsys):
        code = main(
            [
                "explain",
                "--dataset", "SJ",
                "--source", "3",
                "--category", "T2",
                "--k", "4",
                "--landmarks", "4",
                "--tree",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "subspace tree" in out
        assert "tested" in out
        assert "totals:" in out


class TestMetricsTraceOut:
    def test_writes_one_trace_per_query(self, tmp_path, capsys):
        workload = tmp_path / "workload.json"
        workload.write_text(
            json.dumps(
                {
                    "dataset": "SJ",
                    "landmarks": 4,
                    "queries": [
                        {"source": 1, "category": "T2", "k": 3},
                        {"source": 5, "category": "T2", "k": 3},
                    ],
                }
            )
        )
        trace_dir = tmp_path / "traces"
        code = main(
            [
                "metrics",
                "--workload", str(workload),
                "--trace-out", str(trace_dir),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "kpj_queries_total" in captured.out  # exposition unchanged
        files = sorted(trace_dir.glob("query-*.trace.json"))
        assert [f.name for f in files] == [
            "query-000.trace.json",
            "query-001.trace.json",
        ]
        for f in files:
            assert validate_chrome_trace(json.loads(f.read_text())) > 0
