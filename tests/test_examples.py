"""Smoke tests: the shipped examples must run and tell their story.

Only the fast examples run as subprocesses here (the road-network ones
build landmark indexes and belong to manual runs / benchmarks).
"""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "KPJ: top-3 routes" in out
        assert "GKPJ" in out
        assert "Instrumentation" in out

    def test_dimacs_import(self):
        out = run_example("dimacs_import.py")
        assert "loaded 12 junctions" in out
        assert "oracle validation: OK" in out

    def test_examples_all_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "trip_planning.py",
            "social_network.py",
            "ksp_showdown.py",
            "dimacs_import.py",
            "alternative_routes.py",
        } <= names
