"""``python -m repro`` must behave exactly like the ``kpj`` CLI."""

import subprocess
import sys


class TestMainModule:
    def test_module_runs_datasets(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "datasets"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0
        assert "SJ" in proc.stdout
        assert "paper n" in proc.stdout

    def test_module_reports_bad_args(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode != 0
