"""Public-API hygiene: exports resolve and everything is documented.

Walks every module of the package and asserts that (a) each name in an
``__all__`` actually exists, (b) every public module, class, function,
and method carries a docstring — the documentation contract of the
library.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, __ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.split(".")[-1].startswith("_")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_and_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def _public_objects():
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    yield f"{module_name}.{name}", obj


@pytest.mark.parametrize(
    "qualified_name,obj", list(_public_objects()), ids=lambda x: x if isinstance(x, str) else ""
)
def test_public_object_docstrings(qualified_name, obj):
    assert inspect.getdoc(obj), f"{qualified_name} lacks a docstring"
    if inspect.isclass(obj):
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            assert inspect.getdoc(method), (
                f"{qualified_name}.{method_name} lacks a docstring"
            )


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ lists missing {name}"


def test_version_is_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2
