"""Unit tests for the result validator."""

import pytest

from repro.core.kpj import KPJSolver
from repro.core.result import Path, QueryResult
from repro.exceptions import QueryError
from repro.validation import (
    validate_against_oracle,
    validate_instance,
    validate_result,
)


def make_result(paths):
    return QueryResult(paths=paths, algorithm="test")


class TestValidateInstance:
    """Malformed instances must raise QueryError, not crash deeper layers."""

    EDGES = ((0, 1, 1.0), (1, 2, 2.0))

    def test_valid_instance_passes(self):
        validate_instance(3, self.EDGES, [0], [2], k=2)  # must not raise

    def test_negative_weight_rejected(self):
        with pytest.raises(QueryError, match="invalid weight"):
            validate_instance(3, ((0, 1, -1.0),), [0], [1], k=1)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_weight_rejected(self, bad):
        with pytest.raises(QueryError, match="invalid weight"):
            validate_instance(3, ((0, 1, bad),), [0], [1], k=1)

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError, match="self-loop"):
            validate_instance(3, ((1, 1, 1.0),), [0], [2], k=1)

    def test_duplicate_edge_rejected(self):
        with pytest.raises(QueryError, match="duplicate edge"):
            validate_instance(3, ((0, 1, 1.0), (0, 1, 2.0)), [0], [1], k=1)

    def test_duplicate_edge_allowed_when_opted_in(self):
        validate_instance(
            3, ((0, 1, 1.0), (0, 1, 2.0)), [0], [1], k=1,
            allow_parallel_edges=True,
        )

    @pytest.mark.parametrize("k", [0, -3])
    def test_non_positive_k_rejected(self, k):
        with pytest.raises(QueryError, match="k must be positive"):
            validate_instance(3, self.EDGES, [0], [2], k=k)

    def test_empty_graph_rejected(self):
        with pytest.raises(QueryError, match="at least one node"):
            validate_instance(0, (), [0], [0], k=1)

    def test_edge_endpoint_out_of_range_rejected(self):
        with pytest.raises(QueryError, match="out of node range"):
            validate_instance(2, ((0, 5, 1.0),), [0], [1], k=1)

    def test_empty_sources_rejected(self):
        with pytest.raises(QueryError, match="at least one source"):
            validate_instance(3, self.EDGES, [], [2], k=1)

    def test_empty_destinations_rejected(self):
        with pytest.raises(QueryError, match="at least one destination"):
            validate_instance(3, self.EDGES, [0], [], k=1)

    @pytest.mark.parametrize("role,srcs,dsts", [
        ("source", [7], [2]),
        ("destination", [0], [-1]),
    ])
    def test_query_node_out_of_range_rejected(self, role, srcs, dsts):
        with pytest.raises(QueryError, match=f"{role} node .* out of range"):
            validate_instance(3, self.EDGES, srcs, dsts, k=1)


class TestValidateResult:
    def test_valid_answer_passes(self, paper_graph, paper_categories, paper_built):
        solver = KPJSolver(paper_graph, paper_categories, landmarks=4)
        v = paper_built.node_id
        result = solver.top_k(v("v1"), category="H", k=3)
        report = validate_result(
            paper_graph,
            result,
            sources=[v("v1")],
            destinations=paper_categories.nodes_of("H"),
            k=3,
        )
        assert report.ok
        report.raise_if_invalid()  # must not raise

    def test_wrong_source_flagged(self, diamond_graph):
        result = make_result([Path(2.0, (0, 1, 3))])
        report = validate_result(diamond_graph, result, [2], [3], 1)
        assert not report.ok
        assert any("not a source" in v for v in report.violations)

    def test_wrong_destination_flagged(self, diamond_graph):
        result = make_result([Path(1.0, (0, 1))])
        report = validate_result(diamond_graph, result, [0], [3], 1)
        assert any("not a destination" in v for v in report.violations)

    def test_wrong_length_flagged(self, diamond_graph):
        result = make_result([Path(99.0, (0, 1, 3))])
        report = validate_result(diamond_graph, result, [0], [3], 1)
        assert any("edges sum" in v for v in report.violations)

    def test_non_path_flagged(self, diamond_graph):
        result = make_result([Path(1.0, (0, 3))])  # edge (0,3) does not exist
        report = validate_result(diamond_graph, result, [0], [3], 1)
        assert any("not a path" in v for v in report.violations)

    def test_revisit_flagged(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph.from_edges(2, [(0, 1, 1.0), (1, 0, 1.0)])
        result = make_result([Path(3.0, (0, 1, 0, 1))])
        report = validate_result(g, result, [0], [1], 1)
        assert any("revisits" in v for v in report.violations)

    def test_decreasing_lengths_flagged(self, diamond_graph):
        result = make_result([Path(3.0, (0, 2, 3)), Path(2.0, (0, 1, 3))])
        report = validate_result(diamond_graph, result, [0], [3], 2)
        assert any("decrease" in v for v in report.violations)

    def test_duplicates_flagged(self, diamond_graph):
        result = make_result([Path(2.0, (0, 1, 3)), Path(2.0, (0, 1, 3))])
        report = validate_result(diamond_graph, result, [0], [3], 2)
        assert any("duplicate" in v for v in report.violations)

    def test_too_many_paths_flagged(self, diamond_graph):
        result = make_result([Path(2.0, (0, 1, 3)), Path(3.0, (0, 2, 3))])
        report = validate_result(diamond_graph, result, [0], [3], 1)
        assert any("k=1" in v for v in report.violations)

    def test_raise_if_invalid(self, diamond_graph):
        result = make_result([Path(99.0, (0, 1, 3))])
        report = validate_result(diamond_graph, result, [0], [3], 1)
        with pytest.raises(AssertionError, match="invalid query result"):
            report.raise_if_invalid()


class TestValidateAgainstOracle:
    def test_correct_answer_passes(self, diamond_graph):
        result = make_result([Path(2.0, (0, 1, 3)), Path(3.0, (0, 2, 3))])
        report = validate_against_oracle(diamond_graph, result, [0], [3], 2)
        assert report.ok

    def test_suboptimal_answer_flagged(self, diamond_graph):
        # Claims the longer route is the best.
        result = make_result([Path(3.0, (0, 2, 3))])
        report = validate_against_oracle(diamond_graph, result, [0], [3], 1)
        assert any("oracle" in v for v in report.violations)

    def test_missing_paths_flagged(self, diamond_graph):
        result = make_result([Path(2.0, (0, 1, 3))])
        report = validate_against_oracle(diamond_graph, result, [0], [3], 2)
        assert any("expected 2 paths" in v for v in report.violations)

    def test_multi_source(self, line_graph):
        solver = KPJSolver(line_graph, landmarks=None)
        result = solver.join(sources=[0, 4], destinations=[2], k=2)
        report = validate_against_oracle(line_graph, result, [0, 4], [2], 2)
        assert report.ok
